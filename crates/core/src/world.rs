//! The discrete-event simulation world: grid nodes running the ARiA
//! protocol over a self-organized overlay.
//!
//! The world owns the overlay topology, the per-node scheduler state, the
//! event queue and the metrics collector. Scenario code builds a world
//! from a [`WorldConfig`], schedules job submissions, then calls
//! [`World::run`] which processes events to completion.
//!
//! ## Transport model
//!
//! * Flood messages (REQUEST, INFORM) travel hop by hop: each forwarding
//!   step pays the link's one-way latency and one message of traffic.
//! * Point-to-point replies (ACCEPT, ASSIGN) are routed by the overlay;
//!   they are timed as [`crate::AriaConfig::reply_hops`] link traversals but
//!   counted once for traffic (§V-E counts logical messages).
//! * Duplicate suppression follows the selective flooding protocol of
//!   the paper's reference \[28\]: a node processes each flood once, and
//!   forwarding avoids nodes the flood already visited.
//! * With an active [`crate::FaultPlan`] the transport additionally
//!   drops, duplicates, jitters and partitions messages, drawing from a
//!   dedicated seeded stream so fault schedules replay bit-for-bit (see
//!   [`crate::fault`]); [`FaultPlan::none`] skips the whole layer.
//!
//! ## Hot-path representation
//!
//! One run processes millions of events, most of them flood hops, so the
//! per-event state is dense and allocation-free (see [`crate::dense`]'s
//! module docs for the tables themselves):
//!
//! * Job specs are interned once at submission in a `Vec`-backed job
//!   table (which also carries each job's initiator, assignee and open
//!   offer collection); messages and events ship bare [`JobId`]s and the
//!   deliver path looks the payload up by index. The paper's wire format
//!   still *carries* the profile — traffic accounting charges the full
//!   §V-E message sizes — the simulator just refuses to copy it per hop.
//! * Flood state (visited bitset + in-flight count) lives in slots
//!   indexed by [`FloodId`] and recycled through a free-list as soon as a
//!   flood's last in-flight message lands, so a run touches a handful of
//!   slots instead of allocating a `HashSet` per flood.
//! * Forward fan-out sampling fills reusable scratch buffers instead of
//!   collecting fresh `Vec`s, drawing the exact same RNG sequence as the
//!   allocating sampler it replaced (`SimRng::choose_multiple_into`).
//!
//! All of this is representation only: event order, RNG draws and thus
//! every metric are bit-for-bit identical to the naive hash-map layout.

use crate::config::{OverlayKind, WorldConfig};
use crate::dense::{AssignInFlight, FloodTable, JobTable, PendingRequest};
use crate::fault::{FaultKind, FaultPlan, FaultRecord};
use crate::logic;
use crate::msg::{FloodId, Message};
use aria_grid::{Cost, JobId, JobSpec, NodeProfile, Policy, SchedulerQueue};
use aria_metrics::MetricsCollector;
use aria_overlay::{builders, Blatant, NodeId, Topology};
use aria_probe::{FloodKind, MsgKind, NullProbe, Probe, ProbeEvent};
use aria_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aria_workload::{JobGenerator, ProfileGenerator, SubmissionSchedule};

/// How often [`World::run`]/[`World::run_until`] audit the protocol state
/// machine in debug builds: every this-many drained events (plus once
/// after the queue drains). [`World::check_invariants`] walks every node,
/// job and pending event, so running it per event would turn a
/// million-event debug run quadratic; a power-of-two stride keeps the
/// audit cheap while still catching corruption within 64 events of its
/// cause. [`World::run_checked`] checks every event regardless.
#[cfg_attr(not(debug_assertions), allow(dead_code))]
pub(crate) const INVARIANT_STRIDE: u64 = 64;

/// A simulation event.
///
/// Events are small and `Copy`: job payloads live in the world's job
/// table and events carry only the [`JobId`].
///
/// `pub(crate)` so [`crate::explore`] can enumerate and inject pending
/// events; outside the crate the queue stays opaque.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) enum Event {
    /// A message arrives at a node.
    Deliver { to: NodeId, msg: Message },
    /// A user submits a job to a random node.
    Submit { job: JobId },
    /// An initiator stops collecting ACCEPT offers for a job.
    AcceptWindowClosed { initiator: NodeId, job: JobId },
    /// An initiator re-floods a REQUEST that received no offers.
    RetryRequest { initiator: NodeId, job: JobId, round: u32 },
    /// A node finishes executing a job.
    ExecutionComplete { node: NodeId, job: JobId },
    /// A node considers advertising jobs for rescheduling.
    InformTick { node: NodeId },
    /// Dispatch is retried once a blocking reservation window has ended.
    DispatchRetry { node: NodeId },
    /// A new node joins the overlay (Expanding scenarios).
    Join,
    /// A random alive node crashes, losing its queue (failure injection).
    Crash,
    /// An initiator's failsafe re-discovers a job lost to a crash.
    RecoverJob {
        /// The lost job.
        job: JobId,
    },
    /// An unacknowledged ASSIGN's retransmit timer fires (fault layer;
    /// `epoch` guards against stale timers after a newer delegation).
    AssignTimeout { job: JobId, epoch: u32 },
    /// A scheduled partition window opens (fault layer).
    PartitionStart { window: u32 },
    /// A scheduled partition window heals (fault layer).
    PartitionEnd { window: u32 },
    /// Periodic gauge sampling.
    Sample,
}

/// Per-node protocol state.
#[derive(Debug, Clone)]
pub(crate) struct NodeState {
    pub(crate) profile: NodeProfile,
    pub(crate) queue: SchedulerQueue,
    /// Crashed nodes stop participating entirely (failure injection).
    pub(crate) alive: bool,
}

/// A simulated ARiA grid.
///
/// See the [crate-level example](crate) for typical usage.
///
/// `Clone` snapshots the complete simulation state — event queue, RNG,
/// dense tables and metrics — so the bounded model checker
/// (`aria-model`) can fork a world per frontier state. The scratch
/// buffers clone too (cheap, and their contents never carry state
/// between events). Fields are `pub(crate)` for [`crate::explore`];
/// the public API stays the accessor surface below.
///
/// ## Observability
///
/// The world is generic over a [`Probe`] sink and calls
/// [`Probe::record`] at every protocol transition. The default
/// `World<NullProbe>` monomorphizes those calls to nothing — the
/// uninstrumented hot path, bit-for-bit and (per `bench_core`)
/// cycle-for-cycle. Build an instrumented world with
/// [`World::with_probe`] (e.g. an `aria_probe::RingRecorder`) and
/// extract the recording with [`World::into_probe`] after the run.
/// Probes observe only: they receive copies of protocol facts and
/// sim-time stamps, and nothing flows back into the simulation.
#[derive(Debug, Clone)]
pub struct World<P: Probe = NullProbe> {
    pub(crate) config: WorldConfig,
    pub(crate) topology: Topology,
    pub(crate) blatant: Blatant,
    pub(crate) nodes: Vec<NodeState>,
    pub(crate) events: EventQueue<Event>,
    pub(crate) rng: SimRng,
    pub(crate) metrics: MetricsCollector,
    /// Active floods, slot-recycled (see [`crate::dense`]).
    pub(crate) floods: FloodTable,
    /// Per-job protocol state: interned spec, initiator, assignee and the
    /// initiator's open offer collection, all in one dense slot.
    pub(crate) jobs: JobTable,
    /// Jobs whose REQUEST rounds were exhausted without an offer.
    pub(crate) abandoned: Vec<JobId>,
    /// Nodes taken down by failure injection.
    pub(crate) crashed: Vec<NodeId>,
    /// Jobs irrecoverably lost to crashes (failsafe off or initiator dead).
    pub(crate) lost: Vec<JobId>,
    /// Jobs re-discovered by the failsafe after a crash.
    pub(crate) recovered: u64,
    /// Events handled so far (drives throughput reporting in the bench
    /// harness).
    pub(crate) processed: u64,
    /// The alive nodes, ascending by id, maintained incrementally by
    /// `join_node`/`crash_node` so candidate rebuilds and gauge samples
    /// never walk all N nodes. Invariant (audited): exactly the nodes
    /// with `NodeState::alive`, sorted, no duplicates.
    pub(crate) alive: Vec<NodeId>,
    /// How many alive nodes are idle (no running job, empty waiting
    /// list), maintained at every queue transition; equals the full scan
    /// the per-sample gauge used to do.
    pub(crate) idle_alive: usize,
    /// Total waiting jobs across alive nodes, maintained at every queue
    /// transition (the other half of the per-sample gauge scan).
    pub(crate) queued_alive: u64,
    /// Scratch buffer for fan-out candidate lists (hot path; reused so
    /// flood forwarding never allocates).
    pub(crate) candidates: Vec<NodeId>,
    /// Scratch buffer for sampled fan-out targets.
    pub(crate) picked: Vec<NodeId>,
    /// Whether the configured [`FaultPlan`] injects anything. Cached so
    /// the hot transport path pays one predictable branch when it does
    /// not (the common case).
    pub(crate) fault_active: bool,
    /// Dedicated RNG stream for fault draws. Forked from the world seed
    /// only when the plan is active, so an inactive plan leaves the main
    /// RNG sequence untouched — bit-for-bit with pre-fault builds.
    pub(crate) fault_rng: SimRng,
    /// Next injection index: increments on every fault that fires, even
    /// when a shrinker allow-list vetoes its effect (the index space must
    /// not shift between shrink candidates).
    pub(crate) fault_seq: u64,
    /// Every fault injection that took effect, in firing order.
    pub(crate) fault_log: Vec<FaultRecord>,
    /// How many [`Event::PartitionStart`] windows are currently open.
    pub(crate) partitions_open: u32,
    /// Precomputed candidate-cost quotes, keyed `(bidder, job, instant)`.
    ///
    /// Scratch by contract: only the sharded executor
    /// (`crate::shard`) populates it — during a window's parallel
    /// phase — and it is emptied again at every window barrier, so under
    /// [`World::run`] it stays empty for the whole run. A cached quote is
    /// bit-identical to computing it in place ([`SchedulerQueue::
    /// cost_of_candidate`] is a pure function of queue state, which the
    /// executor's purge rules keep unchanged between cache fill and use),
    /// so its contents never carry simulation state.
    pub(crate) bid_cache: std::collections::BTreeMap<(NodeId, JobId, SimTime), Cost>,
    /// The observability sink (see the struct docs); [`NullProbe`] by
    /// default, which compiles every `record` call away.
    pub(crate) probe: P,
}

impl World {
    /// Builds an uninstrumented world (`NullProbe`): overlay, node
    /// profiles, scheduler policies and the periodic event scaffolding.
    /// Deterministic in `(config, seed)`.
    pub fn new(config: WorldConfig, seed: u64) -> Self {
        World::with_probe(config, seed, NullProbe)
    }
}

impl<P: Probe> World<P> {
    /// Builds a world with an explicit [`Probe`] sink. Identical to
    /// [`World::new`] in every simulated respect — the probe observes,
    /// it never participates — so a probed run stays bit-for-bit
    /// deterministic in `(config, seed)`.
    pub fn with_probe(config: WorldConfig, seed: u64, probe: P) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut overlay_rng = rng.fork(1);
        let mut profile_rng = rng.fork(2);
        // The fault stream is forked only when the plan can inject
        // anything: forking draws from the parent, so an unconditional
        // fork would shift every later draw and break `FaultPlan::none`'s
        // bit-for-bit equivalence with pre-fault builds.
        let fault_active = config.fault.is_active();
        let fault_rng = if fault_active { rng.fork(7) } else { SimRng::seed_from(0) };

        let mut blatant = Blatant::new(config.overlay_path_length, config.latency);
        let topology = match config.overlay {
            OverlayKind::Blatant => blatant.build(config.nodes, &mut overlay_rng),
            OverlayKind::RandomRegular { degree } => {
                builders::random_regular(config.nodes, degree, &config.latency, &mut overlay_rng)
            }
            OverlayKind::SmallWorld { k, beta } => {
                builders::watts_strogatz(config.nodes, k, beta, &config.latency, &mut overlay_rng)
            }
            OverlayKind::Ring => builders::ring(config.nodes, &config.latency, &mut overlay_rng),
        };

        let generator = ProfileGenerator::paper();
        let nodes: Vec<NodeState> = (0..config.nodes)
            .map(|_| NodeState {
                profile: generator.generate(&mut profile_rng),
                queue: SchedulerQueue::new(config.policies.sample(&mut profile_rng)),
                alive: true,
            })
            .collect();

        let mut events = EventQueue::new();
        events.schedule(SimTime::ZERO, Event::Sample);
        for at in &config.joins {
            events.schedule(*at, Event::Join);
        }
        for at in &config.crashes {
            events.schedule(*at, Event::Crash);
        }
        for (i, window) in config.fault.partitions.iter().enumerate() {
            events.schedule(window.start, Event::PartitionStart { window: i as u32 });
            events.schedule(window.end(), Event::PartitionEnd { window: i as u32 });
        }
        // Every node starts alive and idle with an empty waiting list.
        let alive: Vec<NodeId> = (0..nodes.len() as u32).map(NodeId::new).collect();
        let idle_alive = nodes.len();
        let mut world = World {
            config,
            topology,
            blatant,
            nodes,
            events,
            rng,
            metrics: MetricsCollector::new(SimDuration::from_mins(5)),
            floods: FloodTable::default(),
            jobs: JobTable::default(),
            abandoned: Vec::new(),
            crashed: Vec::new(),
            lost: Vec::new(),
            recovered: 0,
            processed: 0,
            alive,
            idle_alive,
            queued_alive: 0,
            candidates: Vec::new(),
            picked: Vec::new(),
            fault_active,
            fault_rng,
            fault_seq: 0,
            fault_log: Vec::new(),
            partitions_open: 0,
            bid_cache: std::collections::BTreeMap::new(),
            probe,
        };
        world.metrics = MetricsCollector::new(world.config.sample_period);
        if let Some(plan) = world.config.reservations {
            world.commit_reservations(plan);
        }
        if world.config.aria.rescheduling {
            for i in 0..world.config.nodes {
                world.schedule_first_inform_tick(NodeId::new(i as u32));
            }
        }
        world
    }

    fn schedule_first_inform_tick(&mut self, node: NodeId) {
        let period = self.config.aria.inform_period.as_millis();
        let offset = SimDuration::from_millis(self.rng.u64_range(0, period.max(1)));
        let at = self.events.now() + offset;
        self.events.schedule(at, Event::InformTick { node });
    }

    // --- public accessors --------------------------------------------------

    /// The world's configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// The overlay topology (immutable view).
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// The resource profile of a node.
    pub fn profile_of(&self, node: NodeId) -> &NodeProfile {
        &self.nodes[node.index()].profile
    }

    /// The local scheduling policy of a node.
    pub fn policy_of(&self, node: NodeId) -> Policy {
        self.nodes[node.index()].queue.policy()
    }

    /// Profiles of all current nodes (used for feasibility resampling).
    pub fn profiles(&self) -> Vec<NodeProfile> {
        self.nodes.iter().map(|n| n.profile).collect()
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }

    /// Jobs that exhausted every REQUEST round without finding a single
    /// candidate (only possible when feasibility resampling is off).
    pub fn abandoned_jobs(&self) -> &[JobId] {
        &self.abandoned
    }

    /// Nodes taken down by failure injection, in crash order.
    pub fn crashed_nodes(&self) -> &[NodeId] {
        &self.crashed
    }

    /// Jobs irrecoverably lost to crashes.
    pub fn lost_jobs(&self) -> &[JobId] {
        &self.lost
    }

    /// Number of failsafe job recoveries performed.
    pub fn recovered_count(&self) -> u64 {
        self.recovered
    }

    /// Every fault injection that took effect so far, in firing order.
    /// Empty unless the configured [`FaultPlan`] is active.
    pub fn fault_log(&self) -> &[FaultRecord] {
        &self.fault_log
    }

    /// Whether a node is alive (not crashed).
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.nodes[node.index()].alive
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.events.now()
    }

    /// The attached observability sink.
    pub fn probe(&self) -> &P {
        &self.probe
    }

    /// Consumes the world and returns the probe — the way to extract a
    /// recorded trace after a run.
    pub fn into_probe(self) -> P {
        self.probe
    }

    /// How many events were scheduled in the past and clamped to the
    /// current instant (see [`EventQueue::clamped_count`]). A causally
    /// sound run leaves this at zero; tests assert on it after
    /// [`World::run`] so release builds cannot silently reorder events.
    pub fn clamped_events(&self) -> u64 {
        self.events.clamped_count()
    }

    // --- workload injection -------------------------------------------------

    /// Schedules a single job submission at `at` (the initiator is drawn
    /// at event time, so late submissions may land on joined nodes).
    ///
    /// The spec is interned here; everything downstream refers to the job
    /// by id.
    pub fn submit_job(&mut self, at: SimTime, job: JobSpec) {
        self.jobs.register(job);
        self.events.schedule(at, Event::Submit { job: job.id });
    }

    /// Generates and schedules one feasible job per instant of
    /// `schedule`, using this world's node profiles for feasibility.
    pub fn submit_schedule(&mut self, schedule: &SubmissionSchedule, jobs: &mut JobGenerator) {
        let profiles = self.profiles();
        let mut workload_rng = self.rng.fork(3);
        for at in schedule.times() {
            let job = jobs.generate_feasible(at, &profiles, &mut workload_rng);
            self.submit_job(at, job);
        }
    }

    // --- main loop -----------------------------------------------------------

    /// Runs the simulation until every event has been processed (all
    /// periodic activity stops at the configured horizon, so the event
    /// queue always drains) and returns the collected metrics.
    pub fn run(&mut self) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            self.processed += 1;
            self.handle(now, event);
            #[cfg(debug_assertions)]
            if self.processed.is_multiple_of(INVARIANT_STRIDE) {
                self.check_invariants();
            }
        }
        #[cfg(debug_assertions)]
        self.check_invariants();
        &self.metrics
    }

    /// Runs until the given instant, leaving later events pending.
    pub fn run_until(&mut self, deadline: SimTime) -> &MetricsCollector {
        while self.events.peek_time().is_some_and(|t| t <= deadline) {
            let (now, event) = self.events.pop().expect("peeked event exists");
            self.processed += 1;
            self.handle(now, event);
            #[cfg(debug_assertions)]
            if self.processed.is_multiple_of(INVARIANT_STRIDE) {
                self.check_invariants();
            }
        }
        #[cfg(debug_assertions)]
        self.check_invariants();
        &self.metrics
    }

    /// Runs to completion like [`World::run`], auditing the full protocol
    /// state machine with [`World::check_invariants`] after **every**
    /// drained event, in every build profile.
    ///
    /// The checks are read-only, so a checked run produces bit-for-bit
    /// the same metrics as [`World::run`] — the `invariants_golden` test
    /// pins that equivalence. Use this in tests and CI; per-event
    /// auditing is too slow for paper-scale campaigns.
    pub fn run_checked(&mut self) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            self.processed += 1;
            self.handle(now, event);
            self.check_invariants();
        }
        &self.metrics
    }

    /// Runs to completion auditing like [`World::run_checked`], but
    /// returns the first invariant violation instead of panicking. The
    /// chaos harness (`cargo xtask chaos`) uses this as its oracle: a
    /// violation under a randomized fault schedule must become a
    /// shrinkable report, not a crash.
    pub fn run_audited(&mut self) -> Result<(), String> {
        while let Some((now, event)) = self.events.pop() {
            self.processed += 1;
            self.handle(now, event);
            self.try_check_invariants()?;
        }
        Ok(())
    }

    /// Total number of events handled by [`World::run`]/[`World::run_until`].
    pub fn processed_events(&self) -> u64 {
        self.processed
    }

    /// Flood-table diagnostics: `(slots ever allocated, slots whose
    /// visited set ever spilled past the inline tier)`. The scale bench
    /// reports both to show live-flood memory stays O(reach), not O(N).
    pub fn flood_stats(&self) -> (usize, usize) {
        self.floods.stats()
    }

    // --- protocol state-machine auditing ---------------------------------------

    /// Audits the complete protocol state machine, panicking on the first
    /// violated invariant. Read-only: a passing check has no effect on
    /// the run whatsoever.
    ///
    /// This consolidates what used to be scattered `debug_assert`s into
    /// one pass, and cross-checks state that no single call site can see:
    ///
    /// * **Causality** — no event was ever scheduled in the past
    ///   ([`EventQueue::clamped_count`] is zero).
    /// * **Queue integrity** — every node's queue is ordered per its
    ///   policy and duplicate-free ([`SchedulerQueue::validate`]); crashed
    ///   nodes hold no jobs; no job is held by two nodes at once.
    /// * **Flood table integrity** — the free-list is duplicate-free,
    ///   recycled slots have nothing in flight, and every live slot's
    ///   `in_flight` count equals the number of REQUEST/INFORM messages
    ///   of that flood actually pending in the event queue (live slots
    ///   with zero in flight would be leaks: the world recycles them
    ///   eagerly).
    /// * **Offer-window discipline** — an open offer collection implies
    ///   an alive initiator, a pending `AcceptWindowClosed` event for the
    ///   job (ACCEPTs are only gathered inside their window, §III-B/C),
    ///   and a job not yet queued anywhere.
    /// * **Job conservation** — every registered job is accounted for in
    ///   exactly the protocol stages REQUEST/ACCEPT/ASSIGN/INFORM allow:
    ///   completed, queued or running on one node, collecting offers,
    ///   referenced by a pending submission/retry/recovery/delivery
    ///   event, abandoned, or lost to a crash. Completed jobs appear in
    ///   no queue.
    /// * **Record sanity** — per-job timestamps are monotone
    ///   (submitted ≤ assigned ≤ started ≤ completed), reschedules stay
    ///   below assignments, and a world with rescheduling disabled never
    ///   records a reschedule (the PR-1 stale-ACCEPT regression).
    ///
    /// [`World::run`] and [`World::run_until`] call this every
    /// [`INVARIANT_STRIDE`] events in debug builds (and once after the
    /// queue drains); [`World::run_checked`] calls it after every event
    /// in every profile. Cost is `O(nodes + jobs + pending events)`.
    pub fn check_invariants(&self) {
        if let Err(violation) = self.try_check_invariants() {
            panic!("{violation}");
        }
    }

    /// Non-panicking form of [`World::check_invariants`]: `Err` carries
    /// the first violated invariant's message (same `invariant: ...` text
    /// the panicking wrapper raises). The bounded model checker treats
    /// this as a per-state safety property, so a violation becomes a
    /// replayable counterexample trace instead of a panic.
    pub fn try_check_invariants(&self) -> Result<(), String> {
        use std::collections::BTreeMap;

        /// Early-returns the formatted message when the condition fails.
        macro_rules! ensure {
            ($cond:expr, $($arg:tt)+) => {
                if !$cond {
                    return Err(format!($($arg)+));
                }
            };
        }

        // Causality: nothing was ever scheduled in the past.
        ensure!(
            self.events.clamped_count() == 0,
            "invariant: {} event(s) were scheduled in the past and clamped",
            self.events.clamped_count()
        );

        // Queue integrity; collect who holds which job, and recount the
        // incrementally maintained alive index and gauge counters against
        // the ground truth this loop walks anyway.
        let mut held: BTreeMap<JobId, NodeId> = BTreeMap::new();
        let mut alive_recount: Vec<NodeId> = Vec::new();
        let mut idle_recount = 0usize;
        let mut queued_recount = 0u64;
        for (i, state) in self.nodes.iter().enumerate() {
            let node = NodeId::new(i as u32);
            state.queue.validate();
            if !state.alive {
                ensure!(
                    state.queue.is_idle(),
                    "invariant: crashed node {node} still holds jobs"
                );
                continue;
            }
            alive_recount.push(node);
            idle_recount += usize::from(state.queue.is_idle());
            queued_recount += state.queue.waiting_len() as u64;
            let running = state.queue.running().map(|r| r.spec.id);
            for id in state.queue.waiting().iter().map(|j| j.spec.id).chain(running) {
                if let Some(elsewhere) = held.insert(id, node) {
                    return Err(format!("invariant: {id} held by both {elsewhere} and {node}"));
                }
            }
        }
        ensure!(
            self.alive == alive_recount,
            "invariant: alive index ({} node(s)) disagrees with node flags ({} alive)",
            self.alive.len(),
            alive_recount.len()
        );
        ensure!(
            self.idle_alive == idle_recount,
            "invariant: idle gauge counts {} but {} alive node(s) are idle",
            self.idle_alive,
            idle_recount
        );
        ensure!(
            self.queued_alive == queued_recount,
            "invariant: queued gauge counts {} but {} job(s) are waiting on alive nodes",
            self.queued_alive,
            queued_recount
        );

        // Pending-event census: per-flood in-flight counts, open accept
        // windows, and jobs kept alive by an in-flight event.
        let mut in_flight: BTreeMap<u32, u32> = BTreeMap::new();
        let mut windows: Vec<JobId> = Vec::new();
        let mut referenced: Vec<JobId> = Vec::new();
        for (_, event) in self.events.iter() {
            match *event {
                Event::Deliver { msg, .. } => match msg {
                    Message::Request { flood, job, .. } | Message::Inform { flood, job, .. } => {
                        *in_flight.entry(flood.0).or_insert(0) += 1;
                        referenced.push(job);
                    }
                    Message::Assign { job, .. }
                    | Message::Accept { job, .. }
                    | Message::Ack { job, .. } => {
                        referenced.push(job);
                    }
                },
                Event::Submit { job }
                | Event::RetryRequest { job, .. }
                | Event::ExecutionComplete { job, .. }
                | Event::AssignTimeout { job, .. }
                | Event::RecoverJob { job } => referenced.push(job),
                Event::AcceptWindowClosed { job, .. } => windows.push(job),
                Event::InformTick { .. }
                | Event::DispatchRetry { .. }
                | Event::Join
                | Event::Crash
                | Event::PartitionStart { .. }
                | Event::PartitionEnd { .. }
                | Event::Sample => {}
            }
        }
        referenced.sort_unstable();
        windows.sort_unstable();

        // Flood table: free-list duplicate-free, recycled slots drained,
        // live slots' in-flight counts match the census exactly.
        let mut free = self.floods.free_ids().to_vec();
        free.sort_unstable();
        ensure!(
            free.windows(2).all(|w| w[0] != w[1]),
            "invariant: flood free-list holds a slot twice"
        );
        for (id, slot) in self.floods.slots() {
            let censused = in_flight.get(&id).copied().unwrap_or(0);
            if free.binary_search(&id).is_ok() {
                ensure!(
                    slot.in_flight == 0,
                    "invariant: recycled flood slot {id} claims {} in flight",
                    slot.in_flight
                );
                ensure!(
                    censused == 0,
                    "invariant: {censused} message(s) pending for recycled flood slot {id}"
                );
            } else {
                ensure!(
                    slot.in_flight == censused,
                    "invariant: flood {id} counts {} in flight but {censused} are pending",
                    slot.in_flight
                );
                ensure!(
                    slot.in_flight > 0,
                    "invariant: drained flood slot {id} was not recycled"
                );
                ensure!(
                    !slot.visited.is_empty(),
                    "invariant: live flood {id} has an empty visited set (origin missing)"
                );
            }
        }

        // Per-job accounting.
        for slot in self.jobs.iter() {
            let id = slot.spec.id;
            let record = self.metrics.records().get(&id);
            let completed = record.is_some_and(|r| r.is_completed());
            if completed {
                ensure!(
                    !held.contains_key(&id),
                    "invariant: completed job {id} still sits in a queue"
                );
            }
            if slot.pending.is_some() {
                let Some(initiator) = slot.initiator else {
                    return Err(format!("invariant: {id} collects offers without an initiator"));
                };
                ensure!(
                    self.nodes[initiator.index()].alive,
                    "invariant: {id} collects offers at crashed initiator {initiator}"
                );
                ensure!(
                    windows.binary_search(&id).is_ok(),
                    "invariant: {id} collects offers with no open ACCEPT window"
                );
                ensure!(
                    !held.contains_key(&id),
                    "invariant: {id} collects offers while already queued"
                );
                ensure!(!completed, "invariant: completed job {id} collects offers");
            }
            let accounted = completed
                || held.contains_key(&id)
                || slot.pending.is_some()
                || referenced.binary_search(&id).is_ok()
                || windows.binary_search(&id).is_ok()
                || self.abandoned.contains(&id)
                || self.lost.contains(&id);
            ensure!(
                accounted,
                "invariant: {id} vanished — not queued, collecting, in flight, completed, \
                 abandoned or lost"
            );
            if let Some(r) = record {
                ensure!(
                    r.first_assigned_at.is_none_or(|t| t >= r.submitted_at),
                    "invariant: {id} assigned before submission"
                );
                ensure!(
                    r.started_at.is_none_or(|t| Some(t) >= r.first_assigned_at.or(Some(t))
                        && t >= r.submitted_at),
                    "invariant: {id} started before assignment"
                );
                ensure!(
                    r.completed_at.is_none_or(|t| Some(t) >= r.started_at.or(Some(t))),
                    "invariant: {id} completed before it started"
                );
                if r.assignments > 0 {
                    ensure!(
                        r.reschedules < r.assignments,
                        "invariant: {id} has {} reschedules out of {} assignments",
                        r.reschedules,
                        r.assignments
                    );
                }
                if !self.config.aria.rescheduling {
                    ensure!(
                        r.reschedules == 0,
                        "invariant: {id} was rescheduled with rescheduling disabled"
                    );
                }
            }
        }
        Ok(())
    }

    pub(crate) fn handle(&mut self, now: SimTime, event: Event) {
        match event {
            Event::Deliver { to, msg } => self.deliver(now, to, msg),
            Event::Submit { job } => self.submit(now, job),
            Event::AcceptWindowClosed { initiator, job } => {
                self.close_accept_window(now, initiator, job)
            }
            Event::RetryRequest { initiator, job, round } => {
                if self.nodes[initiator.index()].alive {
                    self.start_request_round(now, initiator, job, round);
                } else {
                    self.probe.record(now, ProbeEvent::JobLost { job });
                    self.lost.push(job);
                }
            }
            Event::ExecutionComplete { node, job } => self.complete_execution(now, node, job),
            Event::InformTick { node } => self.inform_tick(now, node),
            Event::DispatchRetry { node } => {
                if self.nodes[node.index()].alive {
                    self.try_start(now, node);
                }
            }
            Event::Join => self.join_node(now),
            Event::Crash => self.crash_node(now),
            Event::RecoverJob { job } => self.recover_job(now, job),
            Event::AssignTimeout { job, epoch } => self.assign_timeout(now, job, epoch),
            Event::PartitionStart { window } => {
                self.partitions_open += 1;
                self.probe.record(now, ProbeEvent::PartitionStarted { window });
            }
            Event::PartitionEnd { window } => {
                self.partitions_open -= 1;
                self.probe.record(now, ProbeEvent::PartitionHealed { window });
            }
            Event::Sample => self.sample(now),
        }
    }

    // --- submission & REQUEST phase (§III-B) ---------------------------------

    fn submit(&mut self, now: SimTime, job: JobId) {
        self.fill_alive_candidates();
        let initiator = self.config.net.pick_initiator(&mut self.rng, &self.candidates, job);
        let spec = self.jobs.spec(job);
        self.metrics.job_submitted(&spec, now);
        self.jobs.slot_mut(job).initiator = Some(initiator);
        self.probe.record(now, ProbeEvent::JobSubmitted { job, initiator });
        self.start_request_round(now, initiator, job, 0);
    }

    fn start_request_round(&mut self, now: SimTime, initiator: NodeId, job: JobId, round: u32) {
        if self.fault_active {
            // A fresh discovery supersedes the fault layer's leftovers:
            // recorded offers are stale and any armed ASSIGN retransmit
            // is obsolete (its pending timeout goes stale via `assign`).
            let slot = self.jobs.slot_mut(job);
            slot.offers.clear();
            slot.assign = None;
        }
        let spec = self.jobs.spec(job);
        // The initiator is itself a candidate when it matches the job.
        let own_bid = {
            let node = &self.nodes[initiator.index()];
            if Self::node_can_bid(node, &spec) {
                Some((node.queue.cost_of_candidate(&spec, now, &node.profile), initiator))
            } else {
                None
            }
        };
        self.jobs.slot_mut(job).pending = Some(PendingRequest { round, best: own_bid });

        // §III-B: the initiator broadcasts "to a random subset of nodes
        // of the overlay" — the flood's seeds are random overlay members
        // (reached via routed delivery); only the subsequent forwarding
        // steps use direct neighbors.
        let flood = self.floods.alloc(initiator, self.nodes.len());
        let request = Message::Request {
            initiator,
            job,
            hops_left: self.config.aria.request_hops,
            flood,
        };
        self.candidates.clear();
        // The alive index walks only live nodes (ascending, like the old
        // full topology scan, so the fan-out draws are bit-identical).
        for i in 0..self.alive.len() {
            let n = self.alive[i];
            if n != initiator {
                self.candidates.push(n);
            }
        }
        self.config.net.pick_targets(
            &mut self.rng,
            &self.candidates,
            self.config.aria.request_fanout,
            &mut self.picked,
        );
        for i in 0..self.picked.len() {
            let seed = self.picked[i];
            self.floods.get_mut(flood).in_flight += 1;
            self.send_routed(now, initiator, seed, request);
        }
        self.probe.record(
            now,
            ProbeEvent::RequestRound {
                job,
                initiator,
                round,
                flood: flood.0,
                seeds: self.picked.len() as u32,
            },
        );
        // An unseedable flood (no other node alive) is over before it
        // starts; recycle its slot.
        self.cleanup_flood(flood);
        self.events.schedule(
            now + self.config.aria.accept_window,
            Event::AcceptWindowClosed { initiator, job },
        );
    }

    fn close_accept_window(&mut self, now: SimTime, initiator: NodeId, job: JobId) {
        if !self.nodes[initiator.index()].alive {
            return; // the crash handler already accounted for the loss
        }
        let Some(pending) = self.jobs.take_pending(job) else {
            return;
        };
        match pending.best {
            Some((_cost, winner)) => {
                self.metrics.job_assigned(job, now, false);
                self.probe.record(
                    now,
                    ProbeEvent::Assigned { job, by: initiator, to: winner, reschedule: false },
                );
                if winner == initiator {
                    // Local execution: no ASSIGN message is needed.
                    self.enqueue_job(now, initiator, job);
                } else {
                    if self.fault_active {
                        self.arm_assign(now, job, initiator, winner, false);
                    }
                    self.send_routed(now, initiator, winner, Message::Assign { initiator, job });
                }
            }
            None => match logic::next_round(pending.round, self.config.aria.max_request_rounds) {
                Some(round) => {
                    self.probe.record(now, ProbeEvent::RetryScheduled { job, initiator, round });
                    self.events.schedule(
                        now + self.config.aria.request_retry,
                        Event::RetryRequest { initiator, job, round },
                    );
                }
                None => {
                    self.probe.record(now, ProbeEvent::JobAbandoned { job, initiator });
                    self.abandoned.push(job);
                }
            },
        }
    }

    // --- message handling -----------------------------------------------------

    /// Accounts for a message that will never be processed: a flood copy
    /// releases its slot's in-flight share, a lost ASSIGN triggers the
    /// initiator's failsafe (or loses the job outright), a lost ACCEPT is
    /// simply a missed offer.
    ///
    /// Two callers share these books exactly: [`World::deliver`] when the
    /// recipient crashed while the message was in flight, and the model
    /// checker's `Drop` fault action (`crate::explore`).
    pub(crate) fn lose_message(&mut self, now: SimTime, to: NodeId, msg: Message) {
        let kind = Self::msg_kind(msg);
        self.probe.record(now, ProbeEvent::MessageDropped { kind, job: msg.job_id(), to });
        match msg {
            Message::Request { flood, .. } | Message::Inform { flood, .. } => {
                self.floods.get_mut(flood).in_flight -= 1;
                self.cleanup_flood(flood);
            }
            Message::Assign { job, .. } => {
                if self.jobs.slot(job).assign.is_some() {
                    // The fault layer's retransmit timer owns recovery of
                    // this delegation; arming the failsafe here too would
                    // double-recover the job.
                    return;
                }
                // The delegation evaporates; the initiator's failsafe
                // will rediscover the job.
                if self.config.failsafe {
                    self.events.schedule(
                        now + self.config.failsafe_detection,
                        Event::RecoverJob { job },
                    );
                } else {
                    self.probe.record(now, ProbeEvent::JobLost { job });
                    self.lost.push(job);
                }
            }
            // A lost offer is a missed opportunity; a lost ACK leaves the
            // retransmit timer armed, and the resulting duplicate ASSIGN
            // is suppressed and re-acknowledged on arrival.
            Message::Accept { .. } | Message::Ack { .. } => {}
        }
    }

    /// The cost node `to` would quote for candidate job `job` at `now`.
    ///
    /// Checks the sharded executor's bid cache first: `run_sharded`
    /// (`crate::shard`) precomputes these pure quotes in parallel for
    /// every REQUEST/INFORM delivery pending in the current
    /// latency-horizon window and the serial replay consumes them here.
    /// A miss — always, under [`World::run`] — computes the quote in
    /// place. Purity makes the two paths bit-identical; debug builds
    /// re-derive every hit to prove it.
    pub(crate) fn candidate_cost(&self, to: NodeId, job: JobId, spec: &JobSpec, now: SimTime) -> Cost {
        let node = &self.nodes[to.index()];
        if let Some(&cached) = self.bid_cache.get(&(to, job, now)) {
            debug_assert_eq!(
                cached,
                node.queue.cost_of_candidate(spec, now, &node.profile),
                "stale bid cache for node {to:?} job {job:?} at {now}: the shard executor's \
                 purge rules missed a queue mutation"
            );
            return cached;
        }
        node.queue.cost_of_candidate(spec, now, &node.profile)
    }

    /// The probe-schema kind tag of a message.
    pub(crate) fn msg_kind(msg: Message) -> MsgKind {
        match msg {
            Message::Request { .. } => MsgKind::Request,
            Message::Accept { .. } => MsgKind::Accept,
            Message::Inform { .. } => MsgKind::Inform,
            Message::Assign { .. } => MsgKind::Assign,
            Message::Ack { .. } => MsgKind::Ack,
        }
    }

    fn deliver(&mut self, now: SimTime, to: NodeId, msg: Message) {
        if !self.nodes[to.index()].alive {
            // The recipient crashed while the message was in flight.
            self.lose_message(now, to, msg);
            return;
        }
        match msg {
            Message::Request { initiator, job, hops_left, flood } => {
                let fresh = self.flood_arrival(flood, to);
                self.probe.record(
                    now,
                    ProbeEvent::FloodHop {
                        kind: FloodKind::Request,
                        job,
                        flood: flood.0,
                        node: to,
                        hops_left,
                        duplicate: !fresh,
                    },
                );
                if !fresh {
                    return;
                }
                let spec = self.jobs.spec(job);
                let node = &self.nodes[to.index()];
                let bids = Self::node_can_bid(node, &spec);
                if bids {
                    let cost = self.candidate_cost(to, job, &spec, now);
                    self.probe.record(
                        now,
                        ProbeEvent::BidSent {
                            kind: FloodKind::Request,
                            job,
                            from: to,
                            to: initiator,
                            cost_ms: cost.as_millis(),
                        },
                    );
                    self.send_routed(now, to, initiator, Message::Accept { from: to, job, cost });
                }
                if logic::should_forward(bids, self.config.aria.forward_on_match, hops_left) {
                    let forwarded =
                        Message::Request { initiator, job, hops_left: hops_left - 1, flood };
                    self.forward_flood(now, to, forwarded, self.config.aria.request_fanout);
                }
                self.flood_departure(flood);
            }
            Message::Inform { assignee, job, cost, hops_left, flood } => {
                let fresh = self.flood_arrival(flood, to);
                self.probe.record(
                    now,
                    ProbeEvent::FloodHop {
                        kind: FloodKind::Inform,
                        job,
                        flood: flood.0,
                        node: to,
                        hops_left,
                        duplicate: !fresh,
                    },
                );
                if !fresh {
                    return;
                }
                let spec = self.jobs.spec(job);
                let node = &self.nodes[to.index()];
                let bids = Self::node_can_bid(node, &spec);
                if bids {
                    let my_cost = self.candidate_cost(to, job, &spec, now);
                    if logic::undercuts(my_cost, cost, self.config.aria.reschedule_threshold) {
                        self.probe.record(
                            now,
                            ProbeEvent::BidSent {
                                kind: FloodKind::Inform,
                                job,
                                from: to,
                                to: assignee,
                                cost_ms: my_cost.as_millis(),
                            },
                        );
                        self.send_routed(
                            now,
                            to,
                            assignee,
                            Message::Accept { from: to, job, cost: my_cost },
                        );
                    }
                }
                if logic::should_forward(bids, self.config.aria.forward_on_match, hops_left) {
                    let forwarded =
                        Message::Inform { assignee, job, cost, hops_left: hops_left - 1, flood };
                    self.forward_flood(now, to, forwarded, self.config.aria.inform_fanout);
                }
                self.flood_departure(flood);
            }
            Message::Accept { from, job, cost } => self.handle_accept(now, to, from, job, cost),
            Message::Assign { initiator: _, job } => self.handle_assign(now, to, job),
            Message::Ack { from, job } => self.handle_ack(now, from, job),
        }
    }

    fn handle_accept(&mut self, now: SimTime, to: NodeId, from: NodeId, job: JobId, cost: Cost) {
        // Offer for a job this node initiated and is still collecting?
        {
            let fault_active = self.fault_active;
            let slot = self.jobs.slot_mut(job);
            if slot.initiator == Some(to) {
                if let Some(pending) = slot.pending.as_mut() {
                    let better = logic::better_offer(pending.best, cost);
                    if better {
                        pending.best = Some((cost, from));
                    }
                    if fault_active {
                        // Remember every offer: if the winner's ASSIGN
                        // exhausts its retransmits, the next-best offer
                        // is the fallback (before the §III-D failsafe).
                        slot.offers.push((cost, from));
                    }
                    self.probe.record(
                        now,
                        ProbeEvent::OfferReceived {
                            job,
                            initiator: to,
                            from,
                            cost_ms: cost.as_millis(),
                            best: better,
                        },
                    );
                    return;
                }
            }
        }
        // Otherwise: a rescheduling offer for a job this node holds. With
        // dynamic rescheduling disabled this path must be inert — an ACCEPT
        // that misses its collection window (or a stray reply) must not move
        // jobs, or assignment accounting drifts (reschedules without moves).
        if !self.config.aria.rescheduling {
            return;
        }
        let threshold = self.config.aria.reschedule_threshold;
        let node = &mut self.nodes[to.index()];
        let Some(current) = node.queue.cost_of_waiting(job, now) else {
            return; // already moved, started, or never here: stale offer
        };
        if !logic::undercuts(cost, current, threshold) {
            return; // conditions changed; the move no longer pays off
        }
        node.queue.remove_waiting(job).expect("cost_of_waiting implies waiting");
        // Gauge upkeep: `to` is alive (it received the offer) and just
        // gave up a waiting job, possibly going idle.
        self.queued_alive -= 1;
        self.idle_alive += usize::from(self.nodes[to.index()].queue.is_idle());
        let initiator = self.jobs.slot(job).initiator.unwrap_or(to);
        self.metrics.job_assigned(job, now, true);
        self.probe.record(now, ProbeEvent::Assigned { job, by: to, to: from, reschedule: true });
        if self.fault_active {
            self.arm_assign(now, job, to, from, true);
        }
        self.send_routed(now, to, from, Message::Assign { initiator, job });
    }

    /// Delivers an ASSIGN idempotently: a duplicate (the job is already
    /// queued, running or completed, or its initiator reopened discovery)
    /// is suppressed instead of double-enqueued. With the fault layer
    /// active the assignee acknowledges the delegation so the assigner's
    /// retransmit timer stands down; a suppressed duplicate re-ACKs, so
    /// a lost ACK cannot retransmit forever.
    fn handle_assign(&mut self, now: SimTime, to: NodeId, job: JobId) {
        let completed = self.metrics.records().get(&job).is_some_and(|r| r.is_completed());
        let stale = self.jobs.slot(job).pending.is_some();
        if completed || stale || self.job_is_held(job) {
            self.probe.record(
                now,
                ProbeEvent::DuplicateSuppressed { kind: MsgKind::Assign, job, node: to },
            );
            self.send_ack(now, to, job);
            return;
        }
        self.enqueue_job(now, to, job);
        self.send_ack(now, to, job);
    }

    /// ACKs a delivered ASSIGN back to its assigner — but only when the
    /// armed delegation actually names this assignee, so a stale copy
    /// (retransmitted to a node the job has since moved away from) cannot
    /// stand down a newer delegation's timer.
    fn send_ack(&mut self, now: SimTime, to: NodeId, job: JobId) {
        if !self.fault_active {
            return;
        }
        if let Some(a) = self.jobs.slot(job).assign {
            if a.to == to {
                self.send_routed(now, to, a.by, Message::Ack { from: to, job });
            }
        }
    }

    /// An ASSIGN acknowledgement landed back at the assigner: disarm the
    /// retransmit timer (its pending timeout goes stale). Late and
    /// duplicate ACKs — the slot already stood down, or a newer
    /// delegation names a different assignee — are ignored.
    fn handle_ack(&mut self, now: SimTime, from: NodeId, job: JobId) {
        let slot = self.jobs.slot_mut(job);
        if let Some(a) = slot.assign {
            if a.to == from {
                slot.assign = None;
                self.probe.record(now, ProbeEvent::AckReceived { job, from });
            }
        }
    }

    /// Arms the ACK/retransmit machinery for an ASSIGN about to be sent
    /// (fault layer only): records the in-flight delegation under a fresh
    /// epoch and schedules the first timeout.
    fn arm_assign(&mut self, now: SimTime, job: JobId, by: NodeId, to: NodeId, reschedule: bool) {
        let slot = self.jobs.slot_mut(job);
        slot.assign_epoch = slot.assign_epoch.wrapping_add(1);
        let epoch = slot.assign_epoch;
        slot.assign = Some(AssignInFlight { to, by, attempt: 0, epoch, reschedule });
        self.events.schedule(
            now + self.config.aria.assign_ack_timeout,
            Event::AssignTimeout { job, epoch },
        );
    }

    /// An ASSIGN's ACK did not arrive in time: retransmit with bounded
    /// exponential backoff; when retries exhaust (or an endpoint died),
    /// fall back to the next-best recorded offer, then to the §III-D
    /// failsafe as the last resort.
    ///
    /// Exactly one timeout is pending per armed epoch: each handler
    /// schedules at most one successor, and a stale epoch (a newer
    /// delegation re-armed the slot) or a disarmed slot returns
    /// immediately.
    fn assign_timeout(&mut self, now: SimTime, job: JobId, epoch: u32) {
        let Some(a) = self.jobs.slot(job).assign else {
            return; // ACKed, superseded, or recovered — stand down
        };
        if a.epoch != epoch {
            return; // a newer delegation owns the timer now
        }
        let completed = self.metrics.records().get(&job).is_some_and(|r| r.is_completed());
        if completed || self.job_is_held(job) {
            // The ASSIGN landed but its ACK was lost; nothing to redo.
            self.jobs.slot_mut(job).assign = None;
            return;
        }
        let alive = self.nodes[a.by.index()].alive && self.nodes[a.to.index()].alive;
        if logic::may_retransmit(a.attempt, self.config.aria.assign_max_retries) && alive {
            let attempt = a.attempt + 1;
            self.jobs.slot_mut(job).assign = Some(AssignInFlight { attempt, ..a });
            self.probe.record(now, ProbeEvent::AssignRetransmit { job, to: a.to, attempt });
            let initiator = self.jobs.slot(job).initiator.unwrap_or(a.by);
            self.send_routed(now, a.by, a.to, Message::Assign { initiator, job });
            let backoff = logic::assign_backoff(self.config.aria.assign_ack_timeout, attempt);
            self.events.schedule(now + backoff, Event::AssignTimeout { job, epoch });
            return;
        }
        // Retries exhausted: this delegation is abandoned.
        self.jobs.slot_mut(job).assign = None;
        let mut fallback = None;
        while let Some((cost, next)) = self.pop_best_offer(job) {
            if next != a.to && self.nodes[next.index()].alive {
                fallback = Some((cost, next));
                break;
            }
        }
        if let Some((_cost, next)) = fallback {
            self.metrics.job_assigned(job, now, a.reschedule);
            self.probe.record(
                now,
                ProbeEvent::Assigned { job, by: a.by, to: next, reschedule: a.reschedule },
            );
            let initiator = self.jobs.slot(job).initiator.unwrap_or(a.by);
            if next == a.by {
                self.enqueue_job(now, next, job);
            } else {
                self.arm_assign(now, job, a.by, next, a.reschedule);
                self.send_routed(now, a.by, next, Message::Assign { initiator, job });
            }
            return;
        }
        // No viable offer left: the failsafe is the last resort.
        if self.config.failsafe {
            self.events
                .schedule(now + self.config.failsafe_detection, Event::RecoverJob { job });
        } else {
            self.probe.record(now, ProbeEvent::JobLost { job });
            self.lost.push(job);
        }
    }

    /// Removes and returns the cheapest recorded offer for a job (the
    /// list is only populated while a fault plan is active).
    fn pop_best_offer(&mut self, job: JobId) -> Option<(Cost, NodeId)> {
        logic::pop_best_offer(&mut self.jobs.slot_mut(job).offers)
    }

    /// Whether the job's recorded assignee is alive and actually holds it
    /// (waiting in its queue or running on it).
    fn job_is_held(&self, job: JobId) -> bool {
        let Some(holder) = self.jobs.slot(job).assignee else {
            return false;
        };
        let state = &self.nodes[holder.index()];
        state.alive
            && (state.queue.is_waiting(job)
                || state.queue.running().is_some_and(|r| r.spec.id == job))
    }

    // --- local execution --------------------------------------------------------

    fn enqueue_job(&mut self, now: SimTime, node: NodeId, job: JobId) {
        self.jobs.slot_mut(job).assignee = Some(node);
        let spec = self.jobs.spec(job);
        let state = &mut self.nodes[node.index()];
        let profile = state.profile;
        // Gauge upkeep (callers guarantee `node` is alive): the job lands
        // waiting, and an idle node stops being idle.
        self.idle_alive -= usize::from(state.queue.is_idle());
        self.queued_alive += 1;
        state.queue.enqueue(spec, now, &profile);
        let depth = state.queue.waiting_len() as u32;
        self.probe.record(now, ProbeEvent::Enqueued { job, node, depth });
        self.try_start(now, node);
    }

    fn try_start(&mut self, now: SimTime, node: NodeId) {
        let state = &mut self.nodes[node.index()];
        let Some(running) = state.queue.start_next(now) else {
            // Jobs may be waiting behind an advance reservation: retry
            // when the blocking window ends.
            if let Some(at) = state.queue.next_dispatch_at(now) {
                self.events.schedule(at, Event::DispatchRetry { node });
            }
            return;
        };
        // Gauge upkeep: a waiting job became the running one. The node
        // was not idle before (non-empty waiting list) and is not now.
        self.queued_alive -= 1;
        let spec = running.spec;
        let ertp = running.expected_end.saturating_since(running.started_at);
        let art = self.config.art.actual_running_time(spec.ert, ertp, &mut self.rng);
        self.metrics.job_started(spec.id, node.raw(), now);
        self.probe.record(now, ProbeEvent::Started { job: spec.id, node });
        self.events.schedule(now + art, Event::ExecutionComplete { node, job: spec.id });
    }

    fn complete_execution(&mut self, now: SimTime, node: NodeId, job: JobId) {
        if !self.nodes[node.index()].alive {
            return; // the executor crashed mid-run; the job was lost there
        }
        let state = &mut self.nodes[node.index()];
        let finished = state.queue.complete_running().expect("completion event for running job");
        // Gauge upkeep: the node goes idle unless more work is waiting
        // (in which case `try_start` below promotes it immediately).
        self.idle_alive += usize::from(state.queue.is_idle());
        debug_assert_eq!(finished.spec.id, job, "completion event job mismatch");
        self.metrics.job_completed(job, now);
        self.probe.record(now, ProbeEvent::Completed { job, node });
        self.try_start(now, node);
    }

    /// Commits randomly placed advance reservations on every node
    /// (build time; `plan.mean_per_node` expected windows each).
    fn commit_reservations(&mut self, plan: crate::config::ReservationPlan) {
        let mut rng = self.rng.fork(6);
        let horizon_ms = self.config.horizon.as_millis().max(1);
        for i in 0..self.nodes.len() {
            // det:allow(lossy-float-cast): floor() of a small non-negative mean
            let mut count = plan.mean_per_node.floor() as u64;
            if rng.chance(plan.mean_per_node.fract()) {
                count += 1;
            }
            for _ in 0..count {
                let start = SimTime::from_millis(rng.u64_range(0, horizon_ms));
                let duration = plan.duration.sample(&mut rng);
                let window = aria_grid::Reservation::starting_at(start, duration);
                // Overlapping draws are simply skipped: the plan is a
                // statistical load, not an exact schedule.
                let _ = self.nodes[i].queue.add_reservation(window);
            }
        }
    }

    // --- dynamic rescheduling (§III-D) -------------------------------------------

    fn inform_tick(&mut self, now: SimTime, node: NodeId) {
        if now > self.config.horizon || !self.nodes[node.index()].alive {
            return; // stop the periodic chain
        }
        let candidates = {
            let state = &self.nodes[node.index()];
            state.queue.inform_candidates(now, self.config.aria.inform_batch)
        };
        for id in candidates {
            let cost = self.nodes[node.index()]
                .queue
                .cost_of_waiting(id, now)
                .expect("inform candidate has a cost");
            let flood = self.floods.alloc(node, self.nodes.len());
            self.probe.record(
                now,
                ProbeEvent::InformRound { job: id, node, flood: flood.0, cost_ms: cost.as_millis() },
            );
            let inform = Message::Inform {
                assignee: node,
                job: id,
                cost,
                hops_left: self.config.aria.inform_hops,
                flood,
            };
            self.forward_flood(now, node, inform, self.config.aria.inform_fanout);
            // If every neighbor had already seen the flood (or the node is
            // isolated), nothing went out: recycle the slot immediately.
            self.cleanup_flood(flood);
        }
        self.events
            .schedule(now + self.config.aria.inform_period, Event::InformTick { node });
    }

    // --- overlay growth (Expanding scenarios) -------------------------------------

    fn join_node(&mut self, now: SimTime) {
        let mut overlay_rng = self.rng.fork(4);
        let id = self.blatant.integrate_node(&mut self.topology, &mut overlay_rng);
        let mut profile_rng = self.rng.fork(5);
        let generator = ProfileGenerator::paper();
        self.nodes.push(NodeState {
            profile: generator.generate(&mut profile_rng),
            queue: SchedulerQueue::new(self.config.policies.sample(&mut profile_rng)),
            alive: true,
        });
        debug_assert_eq!(self.nodes.len(), self.topology.len());
        // Index upkeep: the joiner gets the next id, so appending keeps
        // the alive index sorted; it starts idle with an empty queue.
        debug_assert!(self.alive.last().is_none_or(|&last| last < id));
        self.alive.push(id);
        self.idle_alive += 1;
        self.probe.record(now, ProbeEvent::NodeJoined { node: id });
        if self.config.aria.rescheduling && now <= self.config.horizon {
            self.schedule_first_inform_tick(id);
        }
    }

    // --- failure injection & failsafe recovery (§III-D) ----------------------------

    /// All currently alive nodes, ascending (a copy of the maintained
    /// index; the hot submission path uses
    /// [`World::fill_alive_candidates`] instead).
    #[cfg(test)]
    fn alive_nodes(&self) -> Vec<NodeId> {
        self.alive.clone()
    }

    /// Fills the scratch candidate buffer with all alive nodes, in the
    /// same order `alive_nodes` produces them.
    fn fill_alive_candidates(&mut self) {
        self.candidates.clear();
        self.candidates.extend_from_slice(&self.alive);
    }

    /// Crashes one random alive node: its links vanish, its waiting and
    /// running jobs are lost, and (with the failsafe armed) the jobs'
    /// initiators rediscover them after the detection delay.
    fn crash_node(&mut self, now: SimTime) {
        if self.alive.len() <= 2 {
            return; // refuse to kill a grid that small
        }
        let victim = *self.rng.choose(&self.alive);
        self.nodes[victim.index()].alive = false;
        self.crashed.push(victim);
        // Index and gauge upkeep, before the queue is drained below: the
        // victim's idle state and waiting jobs leave the alive totals.
        let slot = self.alive.binary_search(&victim).expect("victim was in the alive index");
        self.alive.remove(slot);
        self.idle_alive -= usize::from(self.nodes[victim.index()].queue.is_idle());
        self.queued_alive -= self.nodes[victim.index()].queue.waiting_len() as u64;

        // The victim's links disappear with it.
        let neighbors: Vec<NodeId> = self.topology.neighbors(victim).to_vec();
        for &n in &neighbors {
            self.topology.disconnect(victim, n);
        }
        // Overlay self-healing (BLATANT-S maintenance, abstracted): alive
        // neighbors that lost their redundancy re-link to random peers.
        // The alive index yields the same ascending candidate order the
        // old full topology scan did, so the re-link draws are unchanged.
        for &orphan in &neighbors {
            if !self.nodes[orphan.index()].alive || self.topology.degree(orphan) >= 2 {
                continue;
            }
            let candidates: Vec<NodeId> = self
                .alive
                .iter()
                .copied()
                .filter(|&n| n != orphan && !self.topology.are_connected(orphan, n))
                .collect();
            if !candidates.is_empty() {
                let peer = *self.rng.choose(&candidates);
                let latency = self.config.latency.sample(&mut self.rng);
                self.topology.connect(orphan, peer, latency);
            }
        }

        // Jobs held by the victim are lost with its queue.
        let state = &mut self.nodes[victim.index()];
        let mut lost_jobs: Vec<JobId> =
            state.queue.drain_waiting().into_iter().map(|j| j.spec.id).collect();
        if let Some(running) = state.queue.complete_running() {
            lost_jobs.push(running.spec.id);
        }
        self.probe.record(
            now,
            ProbeEvent::NodeCrashed { node: victim, lost_jobs: lost_jobs.len() as u32 },
        );
        // Jobs the victim was *initiating* lose their offer collection;
        // nobody else tracks them, so they are gone for good.
        let pending = self.jobs.drop_pending_of(victim);
        for &job in &pending {
            self.probe.record(now, ProbeEvent::JobLost { job });
        }
        self.lost.extend(pending);

        for job in lost_jobs {
            if self.config.failsafe {
                self.events.schedule(
                    now + self.config.failsafe_detection,
                    Event::RecoverJob { job },
                );
            } else {
                self.probe.record(now, ProbeEvent::JobLost { job });
                self.lost.push(job);
            }
        }
    }

    /// The initiator-side failsafe: re-run the discovery phase for a job
    /// lost to a crash, unless it is demonstrably fine (completed, or
    /// alive and queued elsewhere) or its initiator died too.
    fn recover_job(&mut self, now: SimTime, job: JobId) {
        if self.metrics.records().get(&job).is_some_and(|r| r.is_completed()) {
            return;
        }
        if self.job_is_held(job) {
            return; // false alarm: the job found another home
        }
        if self.jobs.slot(job).pending.is_some() {
            return; // discovery already underway (a duplicate recovery)
        }
        match self.jobs.slot(job).initiator {
            Some(initiator) if self.nodes[initiator.index()].alive => {
                self.recovered += 1;
                self.probe.record(now, ProbeEvent::RecoveryStarted { job, initiator });
                self.start_request_round(now, initiator, job, 0);
            }
            _ => {
                self.probe.record(now, ProbeEvent::JobLost { job });
                self.lost.push(job);
            }
        }
    }

    // --- sampling -------------------------------------------------------------------

    fn sample(&mut self, now: SimTime) {
        // The incrementally maintained gauge counters replace what used
        // to be two full scans over all N nodes per sample (the audit
        // recounts them against the ground truth).
        let idle = self.idle_alive;
        let queued = self.queued_alive;
        self.metrics.sample_gauges(idle, queued as usize);
        self.probe.record(
            now,
            ProbeEvent::Gauge {
                idle: idle as u64,
                queued,
                pending_events: self.events.len() as u64,
                peak_events: self.events.peak_len() as u64,
            },
        );
        let next = now + self.config.sample_period;
        if next <= self.config.horizon {
            self.events.schedule(next, Event::Sample);
        }
    }

    // --- transport helpers ------------------------------------------------------------

    /// Whether a node both matches a job's requirements and bids in the
    /// job's cost family (batch offers are never mixed with deadline
    /// offers, §III-C).
    pub(crate) fn node_can_bid(node: &NodeState, job: &JobSpec) -> bool {
        logic::can_bid(&node.profile, node.queue.policy(), job)
    }

    /// Marks a flood message's arrival. Returns `false` (and finishes the
    /// book-keeping) if this node already saw the flood.
    fn flood_arrival(&mut self, flood: FloodId, at: NodeId) -> bool {
        let slot = self.floods.get_mut(flood);
        slot.in_flight -= 1;
        if !slot.visited.insert(at) {
            self.cleanup_flood(flood);
            return false;
        }
        true
    }

    /// Finishes one message's book-keeping after processing (may recycle
    /// the flood slot once nothing is in flight).
    fn flood_departure(&mut self, flood: FloodId) {
        self.cleanup_flood(flood);
    }

    fn cleanup_flood(&mut self, flood: FloodId) {
        if self.floods.get(flood).in_flight == 0 {
            self.floods.release(flood);
        }
    }

    /// Forwards a flood message from `from` to up to `fanout` random
    /// neighbors not yet visited by the flood (selective flooding, \[28\]).
    ///
    /// Allocation-free: candidates and sampled targets go through the
    /// world's scratch buffers, and the visited check is a bit probe.
    fn forward_flood(&mut self, now: SimTime, from: NodeId, msg: Message, fanout: usize) {
        let flood = match msg {
            Message::Request { flood, .. } | Message::Inform { flood, .. } => flood,
            _ => unreachable!("only REQUEST/INFORM flood"),
        };
        self.candidates.clear();
        let visited = &self.floods.get(flood).visited;
        for &n in self.topology.neighbors(from) {
            if !visited.contains(n) {
                self.candidates.push(n);
            }
        }
        self.config.net.pick_targets(&mut self.rng, &self.candidates, fanout, &mut self.picked);
        for i in 0..self.picked.len() {
            let target = self.picked[i];
            let link = self
                .topology
                .latency(from, target)
                .expect("forwarding along an existing link");
            let latency = self.config.net.flood_latency(link);
            self.floods.get_mut(flood).in_flight += 1;
            self.metrics.record_message(msg.traffic_class());
            self.transmit(now, from, target, msg, latency);
        }
    }

    /// Sends a point-to-point message (ACCEPT/ASSIGN/ACK): counted once,
    /// timed as a few overlay hops. `from` is the logical sender — the
    /// transport only needs it to decide which side of a partition cut
    /// the message originates on.
    fn send_routed(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: Message) {
        let latency = self.config.net.reply_latency(
            &mut self.rng,
            &self.config.latency,
            self.config.aria.reply_hops,
        );
        self.metrics.record_message(msg.traffic_class());
        self.transmit(now, from, to, msg, latency);
    }

    // --- fault layer (see `crate::fault`) -----------------------------------------

    /// The final transport step for one message copy: applies the active
    /// [`FaultPlan`] (partition cut, loss, duplication, jitter), then
    /// schedules delivery. With no active plan this is exactly the one
    /// `events.schedule` the pre-fault transport performed — no RNG
    /// draws, no bookkeeping — which is what keeps [`FaultPlan::none`]
    /// bit-for-bit inert.
    ///
    /// Traffic was already charged by the caller: a lost message was
    /// still transmitted (§V-E counts logical messages), and a duplicate
    /// is transport-level noise, not an extra protocol message.
    ///
    /// effects:choke-point(deliver) — this is the only place handler
    /// code may schedule [`Event::Deliver`]: every cross-node effect
    /// funnels through here, which is what lets the effect-map analyzer
    /// (`cargo xtask effects`, DESIGN.md §13) prove handlers touch
    /// non-local node state only via explicit transmit edges.
    fn transmit(&mut self, now: SimTime, from: NodeId, to: NodeId, msg: Message, latency: SimDuration) {
        if !self.fault_active {
            self.events.schedule(now + latency, Event::Deliver { to, msg });
            return;
        }
        // Partition first: an open cut severs the link outright, no
        // randomness involved (the injection index still lets the
        // shrinker veto individual crossings).
        if self.partitions_open > 0
            && FaultPlan::crosses_cut(from, to)
            && self.fault_fires(FaultKind::Partition, now, to, msg)
        {
            self.drop_in_transit(now, to, msg);
            return;
        }
        let loss = self.config.fault.loss;
        if loss > 0.0
            && self.fault_rng.chance(loss)
            && self.fault_fires(FaultKind::Loss, now, to, msg)
        {
            self.drop_in_transit(now, to, msg);
            return;
        }
        let jitter = self.jitter();
        self.events.schedule(now + latency + jitter, Event::Deliver { to, msg });
        let duplicate = self.config.fault.duplicate;
        if duplicate > 0.0
            && self.fault_rng.chance(duplicate)
            && self.fault_fires(FaultKind::Duplicate, now, to, msg)
        {
            // The second copy carries its own in-flight share for flood
            // accounting and its own jitter draw.
            if let Message::Request { flood, .. } | Message::Inform { flood, .. } = msg {
                self.floods.get_mut(flood).in_flight += 1;
            }
            let extra = self.jitter();
            self.events.schedule(now + latency + jitter + extra, Event::Deliver { to, msg });
        }
    }

    /// One uniformly-drawn jitter increment from the plan (zero when the
    /// plan has no jitter, without consuming a draw).
    fn jitter(&mut self) -> SimDuration {
        let ms = self.config.fault.jitter_ms;
        if ms == 0 {
            return SimDuration::from_millis(0);
        }
        SimDuration::from_millis(self.fault_rng.u64_range(0, ms + 1))
    }

    /// Assigns the next injection index and decides whether the fault
    /// takes effect. The index advances on every firing — vetoed or not —
    /// so the index space is identical across shrink candidates; only
    /// kept firings reach the fault log.
    fn fault_fires(&mut self, kind: FaultKind, now: SimTime, to: NodeId, msg: Message) -> bool {
        let index = self.fault_seq;
        self.fault_seq += 1;
        if !self.config.fault.keeps(index) {
            return false;
        }
        self.fault_log.push(FaultRecord {
            index,
            kind,
            at: now,
            to,
            msg: Self::msg_kind(msg),
            job: msg.job_id(),
        });
        true
    }

    /// Books a message copy claimed by the fault layer at send time.
    /// Mirrors [`World::lose_message`] except floods are *not* recycled
    /// here: every flood sender ends its loop with a `cleanup_flood`, and
    /// recycling mid-loop would hand the slot to the caller's next
    /// in-flight increment.
    fn drop_in_transit(&mut self, now: SimTime, to: NodeId, msg: Message) {
        self.probe.record(
            now,
            ProbeEvent::MessageDropped { kind: Self::msg_kind(msg), job: msg.job_id(), to },
        );
        match msg {
            Message::Request { flood, .. } | Message::Inform { flood, .. } => {
                self.floods.get_mut(flood).in_flight -= 1;
            }
            Message::Assign { job, .. } => {
                if self.jobs.slot(job).assign.is_some() {
                    return; // the retransmit timer owns recovery
                }
                if self.config.failsafe {
                    self.events.schedule(
                        now + self.config.failsafe_detection,
                        Event::RecoverJob { job },
                    );
                } else {
                    self.probe.record(now, ProbeEvent::JobLost { job });
                    self.lost.push(job);
                }
            }
            Message::Accept { .. } | Message::Ack { .. } => {}
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AriaConfig, PolicyMix};
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};
    use aria_metrics::TrafficClass;
    use proptest::prelude::*;

    fn small_world(seed: u64) -> World {
        World::new(WorldConfig::small_test(40), seed)
    }

    fn submit_batch(world: &mut World, count: usize) {
        let mut jobs = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), count);
        world.submit_schedule(&schedule, &mut jobs);
    }

    #[test]
    fn all_jobs_complete_exactly_once() {
        let mut world = small_world(1);
        submit_batch(&mut world, 30);
        let metrics = world.run();
        assert_eq!(metrics.completed_count(), 30);
        assert_eq!(metrics.records().len(), 30);
        for record in metrics.records().values() {
            assert!(record.is_completed(), "{} did not complete", record.id);
            assert!(record.assignments >= 1);
        }
        assert!(world.abandoned_jobs().is_empty());
    }

    #[test]
    fn jobs_execute_only_on_matching_nodes() {
        let mut world = small_world(2);
        let profiles = world.profiles();
        let mut jobs = JobGenerator::paper_batch();
        let mut rng = SimRng::seed_from(99);
        let mut specs = Vec::new();
        for i in 0..20 {
            let at = SimTime::from_mins(i + 1);
            let spec = jobs.generate_feasible(at, &profiles, &mut rng);
            specs.push(spec);
            world.submit_job(at, spec);
        }
        world.run();
        for spec in specs {
            let record = &world.metrics().records()[&spec.id];
            let node = record.executed_on.expect("completed");
            let profile = world.profile_of(NodeId::new(node));
            assert!(
                spec.requirements.matches(profile),
                "{} ran on non-matching node {node}",
                spec.id
            );
        }
    }

    #[test]
    fn runs_are_deterministic_per_seed() {
        let run = |seed| {
            let mut world = small_world(seed);
            submit_batch(&mut world, 25);
            world.run();
            let m = world.metrics();
            (
                m.completion_summary().mean(),
                m.traffic().total_messages(),
                m.idle_series().values().to_vec(),
            )
        };
        assert_eq!(run(7), run(7));
        let (mean_a, msgs_a, _) = run(7);
        let (mean_b, msgs_b, _) = run(8);
        assert!(mean_a != mean_b || msgs_a != msgs_b, "different seeds should differ");
    }

    #[test]
    fn traffic_has_paper_shape() {
        let mut world = small_world(3);
        submit_batch(&mut world, 30);
        let metrics = world.run();
        let traffic = metrics.traffic();
        assert!(traffic.messages(TrafficClass::Request) > 0);
        assert!(traffic.messages(TrafficClass::Accept) > 0);
        assert!(traffic.messages(TrafficClass::Assign) >= 30 - traffic_local_assigns(metrics));
        // INFORM flows only in rescheduling runs; here it is on.
        assert!(traffic.messages(TrafficClass::Inform) > 0);
    }

    fn traffic_local_assigns(metrics: &MetricsCollector) -> u64 {
        // Jobs assigned to their own initiator produce no ASSIGN message.
        metrics.records().len() as u64
    }

    #[test]
    fn disabling_rescheduling_silences_inform() {
        let mut config = WorldConfig::small_test(40);
        config.aria = AriaConfig::without_rescheduling();
        let mut world = World::new(config, 4);
        submit_batch(&mut world, 30);
        let metrics = world.run();
        assert_eq!(metrics.completed_count(), 30);
        assert_eq!(metrics.traffic().messages(TrafficClass::Inform), 0);
        assert_eq!(metrics.reschedule_summary().max(), 0.0);
    }

    #[test]
    fn rescheduling_actually_moves_jobs_under_load() {
        let mut config = WorldConfig::small_test(40);
        config.policies = PolicyMix::Uniform(Policy::Fcfs);
        let mut world = World::new(config, 5);
        // Heavy burst: many jobs in two minutes forces queues to build up,
        // so INFORM floods find better homes as executions drain.
        let mut jobs = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(2), 120);
        world.submit_schedule(&schedule, &mut jobs);
        let metrics = world.run();
        assert_eq!(metrics.completed_count(), 120);
        assert!(
            metrics.reschedule_summary().sum() > 0.0,
            "expected at least one dynamic reschedule under load"
        );
    }

    #[test]
    fn deadline_world_completes_and_reports_stats() {
        let mut config = WorldConfig::small_test(40);
        config.policies = PolicyMix::Uniform(Policy::Edf);
        let mut world = World::new(config, 6);
        let mut jobs = JobGenerator::paper_deadline();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), 30);
        world.submit_schedule(&schedule, &mut jobs);
        let metrics = world.run();
        assert_eq!(metrics.completed_count(), 30);
        let stats = metrics.deadline_stats();
        assert_eq!(stats.met() + stats.missed(), 30);
    }

    #[test]
    fn batch_jobs_are_not_bid_on_by_deadline_nodes() {
        // A pure-EDF world receiving batch jobs: nobody may bid, so jobs
        // are retried and eventually abandoned.
        let mut config = WorldConfig::small_test(20);
        config.policies = PolicyMix::Uniform(Policy::Edf);
        config.aria.max_request_rounds = 2;
        let mut world = World::new(config, 7);
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        let job = JobSpec::batch(JobId::new(0), req, SimDuration::from_hours(1));
        world.submit_job(SimTime::from_mins(1), job);
        let metrics = world.run();
        assert_eq!(metrics.completed_count(), 0);
        assert_eq!(world.abandoned_jobs(), [JobId::new(0)]);
    }

    #[test]
    fn infeasible_job_is_retried_then_abandoned() {
        let mut config = WorldConfig::small_test(20);
        config.aria.max_request_rounds = 3;
        let mut world = World::new(config, 8);
        // Demand an impossible amount of memory.
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, u16::MAX, 1);
        let job = JobSpec::batch(JobId::new(0), req, SimDuration::from_hours(1));
        world.submit_job(SimTime::from_mins(1), job);
        world.run();
        assert_eq!(world.abandoned_jobs().len(), 1);
        // Three REQUEST rounds of traffic were spent.
        assert!(world.metrics().traffic().messages(TrafficClass::Request) > 0);
    }

    #[test]
    fn expanding_world_grows_and_completes() {
        let mut config = WorldConfig::small_test(30);
        config.joins = (0..10u64)
            .map(|i| SimTime::from_mins(30) + SimDuration::from_mins(i))
            .collect();
        let mut world = World::new(config, 9);
        submit_batch(&mut world, 20);
        world.run();
        assert_eq!(world.metrics().completed_count(), 20);
        assert_eq!(world.topology().len(), 40);
        assert!(world.topology().is_connected());
        assert_eq!(world.profiles().len(), 40);
    }

    #[test]
    fn alternative_overlays_schedule_jobs_too() {
        use crate::config::OverlayKind;
        for overlay in [
            OverlayKind::RandomRegular { degree: 4 },
            OverlayKind::SmallWorld { k: 4, beta: 0.2 },
            OverlayKind::Ring,
        ] {
            let mut config = WorldConfig::small_test(40);
            config.overlay = overlay;
            let mut world = World::new(config, 13);
            assert!(world.topology().is_connected(), "{overlay:?} disconnected");
            submit_batch(&mut world, 15);
            world.run();
            assert_eq!(
                world.metrics().completed_count(),
                15,
                "{overlay:?} lost jobs"
            );
        }
    }

    #[test]
    fn reservations_delay_but_never_lose_jobs() {
        use crate::config::ReservationPlan;
        let run = |plan: Option<ReservationPlan>, seed: u64| {
            let mut config = WorldConfig::small_test(40);
            config.reservations = plan;
            let mut world = World::new(config, seed);
            submit_batch(&mut world, 30);
            world.run();
            assert_eq!(world.metrics().completed_count(), 30);
            world.metrics().completion_summary().mean()
        };
        let free = run(None, 31);
        let reserved = run(Some(ReservationPlan::moderate()), 31);
        assert!(
            reserved >= free,
            "reservation load should not speed jobs up ({reserved} vs {free})"
        );
    }

    #[test]
    fn backfill_grid_completes_under_reservations() {
        use crate::config::ReservationPlan;
        let run = |policy: Policy, seed: u64| {
            let mut config = WorldConfig::small_test(40);
            config.policies = PolicyMix::Uniform(policy);
            config.reservations = Some(ReservationPlan::moderate());
            let mut world = World::new(config, seed);
            submit_batch(&mut world, 30);
            world.run();
            assert_eq!(world.metrics().completed_count(), 30, "{policy} lost jobs");
            world.metrics().waiting_summary().mean()
        };
        // Both complete; backfill should not be slower than strict FCFS
        // under the same reservation load (same seed, same workload).
        let fcfs = run(Policy::Fcfs, 33);
        let backfill = run(Policy::Backfill, 33);
        assert!(
            backfill <= fcfs * 1.1,
            "backfill waits ({backfill}) should not exceed FCFS ({fcfs}) by much"
        );
    }

    #[test]
    fn crashes_lose_nodes_but_failsafe_recovers_jobs() {
        let mut config = WorldConfig::small_test(50);
        // Crash five nodes while the workload is in flight.
        config.crashes = (0..5u64).map(|i| SimTime::from_mins(40 + 10 * i)).collect();
        let mut world = World::new(config, 21);
        submit_batch(&mut world, 40);
        world.run();
        assert_eq!(world.crashed_nodes().len(), 5);
        // Crashed nodes are disconnected; the survivors stay connected
        // (self-healing) — check by BFS over alive nodes only: every
        // alive node must reach some other alive node's neighborhood.
        for &dead in world.crashed_nodes() {
            assert!(!world.is_alive(dead));
            assert_eq!(world.topology().degree(dead), 0);
        }
        // Everything either completed or is explicitly accounted lost.
        let completed = world.metrics().completed_count() as usize;
        let lost = world.lost_jobs().len();
        let abandoned = world.abandoned_jobs().len();
        assert_eq!(completed + lost + abandoned, 40, "job accounting broken");
        // The failsafe did real work on at least one seed/crash combo.
        assert!(
            world.recovered_count() > 0 || lost == 0,
            "crashes during load should trigger recoveries"
        );
        // No double execution: every completed record completed once.
        assert_eq!(
            world.metrics().records().values().filter(|r| r.is_completed()).count(),
            completed
        );
    }

    #[test]
    fn failsafe_off_loses_crashed_jobs() {
        let mut config = WorldConfig::small_test(30);
        config.failsafe = false;
        // Heavy burst then a crash right in the middle of the backlog.
        config.crashes = vec![SimTime::from_mins(30)];
        let mut world = World::new(config, 3);
        let mut jobs = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(5), 60);
        world.submit_schedule(&schedule, &mut jobs);
        world.run();
        let completed = world.metrics().completed_count() as usize;
        let lost = world.lost_jobs().len();
        assert_eq!(completed + lost + world.abandoned_jobs().len(), 60);
        assert!(lost > 0, "a crash mid-backlog with no failsafe must lose jobs");
    }

    #[test]
    fn crash_refuses_to_kill_tiny_grids() {
        let mut config = WorldConfig::small_test(2);
        config.crashes = vec![SimTime::from_mins(1)];
        let mut world = World::new(config, 23);
        world.run();
        assert!(world.crashed_nodes().is_empty());
    }

    #[test]
    fn gauge_series_span_the_horizon() {
        let mut world = small_world(10);
        submit_batch(&mut world, 5);
        world.run();
        let expected =
            (world.config().horizon.as_millis() / world.config().sample_period.as_millis()) + 1;
        let metrics = world.metrics();
        assert_eq!(metrics.idle_series().len() as u64, expected);
        // Completed series is monotone non-decreasing.
        let completed = metrics.completed_series().values();
        assert!(completed.windows(2).all(|w| w[0] <= w[1]));
        assert_eq!(*completed.last().unwrap(), 5.0);
    }

    #[test]
    fn run_until_stops_midway() {
        let mut world = small_world(11);
        submit_batch(&mut world, 10);
        world.run_until(SimTime::from_mins(30));
        assert!(world.now() <= SimTime::from_mins(30));
        let before = world.metrics().completed_count();
        world.run();
        assert!(world.metrics().completed_count() >= before);
        assert_eq!(world.metrics().completed_count(), 10);
    }

    #[test]
    fn waiting_time_reflects_queueing() {
        let mut world = small_world(12);
        submit_batch(&mut world, 40);
        world.run();
        let waiting = world.metrics().waiting_summary();
        assert_eq!(waiting.count(), 40);
        // Every job waits at least the accept window before starting.
        assert!(waiting.min() >= world.config().aria.accept_window.as_secs_f64());
    }

    /// Regression: a dropped *reschedule* (steal) ASSIGN must never strand
    /// the job. The holder has already dequeued it when the ASSIGN goes
    /// out, so without the ACK/retransmit ladder (and the failsafe behind
    /// it) nobody would hold the job any more.
    ///
    /// The test drives the event loop by hand: it waits for a moment
    /// where a job sits waiting on its holder expensively enough to
    /// steal, injects an irresistible rescheduling bid through the real
    /// ACCEPT handler, and then plays lossy network for that one job —
    /// every ASSIGN about it is dropped until the failsafe fires.
    #[test]
    fn dropped_steal_assign_retransmits_then_failsafe_recovers() {
        let mut config = WorldConfig::small_test(10);
        // Smallest active plan: the fault layer (and with it ASSIGN
        // arming) is on, but the transport stays effectively reliable.
        config.fault.jitter_ms = 1;
        let mut world = World::new(config, 23);
        // A burst dense enough that queues build past the steal threshold.
        let mut jobs = JobGenerator::paper_batch();
        let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(5), 20);
        world.submit_schedule(&schedule, &mut jobs);

        // Step until some job is waiting on its holder with a queue cost
        // big enough that a crafted bid clears the steal threshold.
        let threshold = world.config.aria.reschedule_threshold.as_millis() as i64;
        let mut steal: Option<(SimTime, JobId, NodeId)> = None;
        while steal.is_none() {
            let (now, event) = world.events.pop().expect("no stealable moment in this run");
            world.handle(now, event);
            steal = world.metrics.records().keys().find_map(|&job| {
                let holder = world.jobs.slot(job).assignee?;
                let cost = world.nodes[holder.index()].queue.cost_of_waiting(job, now)?;
                (cost.as_millis() > threshold + 1).then_some((now, job, holder))
            });
        }
        let (now, job, holder) = steal.unwrap();
        let spec = world.jobs.spec(job);
        let thief = world
            .topology
            .nodes()
            .find(|&n| {
                n != holder
                    && world.nodes[n.index()].alive
                    && World::<NullProbe>::node_can_bid(&world.nodes[n.index()], &spec)
            })
            .expect("some other node can bid for the job");

        // The real steal path: dequeues from the holder, arms the
        // retransmit record, sends the ASSIGN.
        world.handle_accept(now, holder, thief, job, Cost::from_ettc(SimDuration::from_millis(1)));
        let armed = world.jobs.slot(job).assign.expect("steal ASSIGN must be armed");
        assert!(armed.reschedule, "the armed record must know it was a steal");
        assert_eq!(armed.to, thief);
        assert!(
            !world.nodes[holder.index()].queue.is_waiting(job),
            "the holder released the job when delegating"
        );

        // Lossy network for this one job: drop every ASSIGN about it —
        // the original, all retransmits, and every fallback — until the
        // failsafe takes over. No crash happens, so the only possible
        // recovery is the retransmit-exhaustion one.
        let mut drops = 0usize;
        let mut max_attempt = 0u32;
        while let Some((t, event)) = world.events.pop() {
            if let Some(a) = world.jobs.slot(job).assign {
                max_attempt = max_attempt.max(a.attempt);
            }
            if world.recovered_count() == 0 {
                if let Event::Deliver { to, msg: msg @ Message::Assign { job: j, .. } } = event {
                    if j == job {
                        drops += 1;
                        world.drop_in_transit(t, to, msg);
                        continue;
                    }
                }
            }
            world.handle(t, event);
        }

        let retries = world.config.aria.assign_max_retries as usize;
        assert!(
            drops > retries,
            "the full retransmit ladder must have been exhausted (only {drops} drops)"
        );
        assert_eq!(max_attempt, retries as u32, "every retry attempt must have been armed");
        assert_eq!(world.recovered_count(), 1, "the failsafe must recover the stranded job");
        assert_eq!(world.metrics().completed_count(), 20, "no job may be stranded");
        assert!(world.lost_jobs().is_empty());
        assert!(world.abandoned_jobs().is_empty());
        // No double-count: each record completed exactly once, and the
        // full post-run audit holds.
        assert_eq!(
            world.metrics().records().values().filter(|r| r.is_completed()).count(),
            20
        );
        world.check_invariants();
    }

    /// Repeatedly crashing nodes must keep the surviving overlay
    /// connected: the self-healing re-link in `crash_node` (including its
    /// `degree >= 2` orphan-skip branch) has to hold the alive subgraph
    /// together all the way down to the 2-node refusal floor.
    #[test]
    fn repeated_crashes_keep_the_surviving_overlay_connected() {
        let mut world = small_world(17);
        let total = world.config.nodes;
        for wave in 0..total as u64 {
            world.crash_node(SimTime::from_mins(wave + 1));
            let alive = world.alive_nodes();
            assert_eq!(
                alive_component_size(&world, &alive),
                alive.len(),
                "alive overlay split after crash wave {wave} ({} survivors)",
                alive.len()
            );
        }
        // The refusal floor: crashes stop at two survivors.
        assert_eq!(world.alive_nodes().len(), 2);
        assert_eq!(world.crashed_nodes().len(), total - 2);
    }

    /// The maintained alive index (and the gauge counters riding on it)
    /// must stay equal to a full scan of all node slots — the
    /// implementation it replaced — under any interleaving of joins,
    /// crashes, and ordinary protocol progress.
    #[derive(Debug, Clone, Copy)]
    enum ChurnOp {
        Join,
        Crash,
        Step,
    }

    prop_compose! {
        fn arb_churn_op()(kind in 0u8..8) -> ChurnOp {
            match kind {
                0..=1 => ChurnOp::Join,
                2..=3 => ChurnOp::Crash,
                _ => ChurnOp::Step,
            }
        }
    }

    proptest! {
        #[test]
        fn alive_index_and_gauges_match_a_full_scan_under_churn(
            seed in 0u64..64,
            ops in proptest::collection::vec(arb_churn_op(), 1..50),
        ) {
            let mut world = small_world(seed);
            submit_batch(&mut world, 10);
            let mut now = SimTime::ZERO;
            for op in ops {
                match op {
                    ChurnOp::Join => world.join_node(now),
                    ChurnOp::Crash => world.crash_node(now),
                    ChurnOp::Step => {
                        // Let the protocol move: floods, accepts, queue
                        // promotions, completions all mutate the gauges.
                        for _ in 0..50 {
                            let Some((t, event)) = world.events.pop() else { break };
                            now = t;
                            world.handle(t, event);
                        }
                    }
                }
                let scan: Vec<NodeId> = world
                    .topology
                    .nodes()
                    .filter(|&n| world.nodes[n.index()].alive)
                    .collect();
                prop_assert_eq!(world.alive_nodes(), scan.clone(), "alive index diverged");
                world.fill_alive_candidates();
                prop_assert_eq!(world.candidates.clone(), scan.clone(), "candidate fill diverged");
                let idle = scan
                    .iter()
                    .filter(|&&n| world.nodes[n.index()].queue.is_idle())
                    .count();
                let queued: u64 = scan
                    .iter()
                    .map(|&n| world.nodes[n.index()].queue.waiting_len() as u64)
                    .sum();
                prop_assert_eq!(world.idle_alive, idle, "idle gauge diverged");
                prop_assert_eq!(world.queued_alive, queued, "queued gauge diverged");
            }
        }
    }

    /// Size of the connected component containing `alive[0]`, walking
    /// only links between alive nodes.
    fn alive_component_size(world: &World, alive: &[NodeId]) -> usize {
        let mut seen = vec![false; world.topology.len()];
        let mut stack = vec![alive[0]];
        seen[alive[0].index()] = true;
        let mut count = 0;
        while let Some(n) = stack.pop() {
            count += 1;
            for &peer in world.topology.neighbors(n) {
                if world.nodes[peer.index()].alive && !seen[peer.index()] {
                    seen[peer.index()] = true;
                    stack.push(peer);
                }
            }
        }
        count
    }
}

