//! # aria-core — the ARiA fully distributed grid meta-scheduling protocol
//!
//! This crate implements the paper's primary contribution (Brocco,
//! Malatras, Huang, Hirsbrunner: *ARiA: A Protocol for Dynamic Fully
//! Distributed Grid Meta-Scheduling*, ICDCS 2010): a lightweight
//! peer-to-peer protocol whose name spells its four message types —
//! **A**ccept, **R**equest, **i**nform, **A**ssign.
//!
//! ## Protocol phases
//!
//! 1. **Job submission** (§III-B): a job submitted to any node (its
//!    *initiator*) is advertised with a bounded [`Message::Request`]
//!    flood over the overlay.
//! 2. **Job acceptance** (§III-C): matching nodes reply with
//!    [`Message::Accept`] carrying a *cost* — Estimated Time To
//!    Completion for batch schedulers, Negative Accumulated Lateness for
//!    deadline schedulers. The initiator delegates the job to the
//!    cheapest offer with [`Message::Assign`].
//! 3. **Dynamic rescheduling** (§III-D): while a job waits, its current
//!    *assignee* periodically floods [`Message::Inform`] messages; nodes
//!    able to undercut the advertised cost by more than a threshold
//!    reply with an ACCEPT and the job moves.
//!
//! ## Crate layout
//!
//! * [`msg`] — the wire messages of Table I.
//! * [`config`] — protocol and simulation parameters (§IV-E defaults).
//! * [`world`] — the discrete-event simulation world coupling the
//!   overlay (`aria-overlay`), the local schedulers (`aria-grid`), the
//!   workload models (`aria-workload`) and the measurement layer
//!   (`aria-metrics`).
//! * [`central`] — an omniscient centralized meta-scheduler used as an
//!   upper-bound baseline ablation.
//! * [`multireq`] — the multiple-simultaneous-requests baseline the
//!   paper contrasts itself with (its reference \[13\]).
//! * [`gossip`] — the gossip state-dissemination baseline (its
//!   reference \[25\]): cached remote loads instead of on-demand floods.
//! * [`net`] — the transport nondeterminism switch: [`NetModel::Sampled`]
//!   draws the paper's latencies and fanout choices bit-for-bit,
//!   [`NetModel::Lockstep`] makes them pure functions of the state so a
//!   model checker can own the delivery order.
//! * [`explore`] — the exploration surface on [`World`]: enumerating
//!   pending deliveries, applying one [`Action`] at a time, canonical
//!   state fingerprints. Driven by the `aria-model` checker.
//! * [`fault`] — deterministic transport fault injection
//!   ([`FaultPlan`]): per-message loss, duplicates, latency jitter and
//!   scheduled overlay partitions, replayable from the world seed and
//!   shrinkable by injection index (`cargo xtask chaos`).
//!
//! ## Example
//!
//! ```
//! use aria_core::{World, WorldConfig};
//! use aria_workload::{JobGenerator, SubmissionSchedule};
//! use aria_sim::{SimDuration, SimTime};
//!
//! // A small grid: 50 nodes, mixed FCFS/SJF schedulers, rescheduling on.
//! let config = WorldConfig::small_test(50);
//! let mut world = World::new(config, 42);
//!
//! // Submit 20 feasible jobs, one per minute, to random nodes.
//! let mut jobs = JobGenerator::paper_batch();
//! let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), 20);
//! world.submit_schedule(&schedule, &mut jobs);
//! let metrics = world.run();
//! assert_eq!(metrics.completed_count(), 20);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod central;
pub mod gossip;
pub mod config;
mod dense;
pub mod driver;
pub mod effects;
pub mod explore;
pub mod fault;
pub mod logic;
pub mod msg;
pub mod multireq;
pub mod net;
pub mod shard;
mod visited;
pub mod world;

pub use central::CentralScheduler;
pub use gossip::GossipScheduler;
pub use config::{AriaConfig, OverlayKind, PolicyMix, ReservationPlan, WorldConfig};
pub use effects::EffectAudit;
pub use explore::{Action, PendingDelivery};
pub use fault::{FaultKind, FaultPlan, FaultRecord, PartitionWindow};
pub use msg::{FloodId, Message};
pub use multireq::MultiRequestScheduler;
pub use net::NetModel;
pub use shard::HorizonContract;
pub use world::World;
