//! An omniscient centralized meta-scheduler baseline.
//!
//! The paper motivates ARiA against "centralized or hierarchical
//! meta-schedulers that have a global view of the resources" (§II). This
//! module provides that comparator for the ablation benches: a scheduler
//! that sees every queue instantly and assigns each submitted job to the
//! globally cheapest matching node, with zero messaging cost or latency.
//!
//! It is an *upper bound* on initial-placement quality: ARiA's discovery
//! flood only samples the grid, while the central scheduler inspects all
//! of it. It has no rescheduling phase — its placements are already
//! globally optimal at submission time under the ETTC/NAL metric.

use aria_grid::{JobSpec, NodeProfile, Policy, SchedulerQueue};
use aria_metrics::MetricsCollector;
use aria_sim::{EventQueue, SimDuration, SimRng, SimTime};
use aria_workload::{ArtModel, JobGenerator, ProfileGenerator, SubmissionSchedule};

use crate::config::PolicyMix;

#[derive(Debug, Clone)]
enum Event {
    Submit { job: JobSpec },
    Complete { node: usize },
    Sample,
}

/// A centralized grid meta-scheduler over the same node/job models as the
/// distributed [`crate::World`].
///
/// # Example
///
/// ```
/// use aria_core::{CentralScheduler, PolicyMix};
/// use aria_grid::Policy;
/// use aria_workload::{JobGenerator, SubmissionSchedule};
/// use aria_sim::{SimDuration, SimTime};
///
/// let mut central = CentralScheduler::new(
///     50,
///     PolicyMix::Uniform(Policy::Fcfs),
///     SimTime::from_hours(12),
///     SimDuration::from_mins(5),
///     1,
/// );
/// let mut jobs = JobGenerator::paper_batch();
/// let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), 10);
/// central.submit_schedule(&schedule, &mut jobs);
/// assert_eq!(central.run().completed_count(), 10);
/// ```
#[derive(Debug)]
pub struct CentralScheduler {
    profiles: Vec<NodeProfile>,
    queues: Vec<SchedulerQueue>,
    events: EventQueue<Event>,
    metrics: MetricsCollector,
    rng: SimRng,
    art: ArtModel,
    horizon: SimTime,
    sample_period: SimDuration,
}

impl CentralScheduler {
    /// Builds a centralized grid with `nodes` nodes; deterministic in the
    /// seed, using the same profile distributions as the distributed
    /// world.
    pub fn new(
        nodes: usize,
        policies: PolicyMix,
        horizon: SimTime,
        sample_period: SimDuration,
        seed: u64,
    ) -> Self {
        let mut rng = SimRng::seed_from(seed);
        let mut profile_rng = rng.fork(2);
        let generator = ProfileGenerator::paper();
        let profiles: Vec<NodeProfile> =
            (0..nodes).map(|_| generator.generate(&mut profile_rng)).collect();
        let queues: Vec<SchedulerQueue> =
            (0..nodes).map(|_| SchedulerQueue::new(policies.sample(&mut profile_rng))).collect();
        let mut events = EventQueue::new();
        events.schedule(SimTime::ZERO, Event::Sample);
        CentralScheduler {
            profiles,
            queues,
            events,
            metrics: MetricsCollector::new(sample_period),
            rng,
            art: ArtModel::paper_baseline(),
            horizon,
            sample_period,
        }
    }

    /// Node profiles (for feasibility resampling).
    pub fn profiles(&self) -> &[NodeProfile] {
        &self.profiles
    }

    /// The local scheduling policy of node `i`.
    pub fn policy_of(&self, i: usize) -> Policy {
        self.queues[i].policy()
    }

    /// Schedules a job submission.
    pub fn submit_job(&mut self, at: SimTime, job: JobSpec) {
        self.events.schedule(at, Event::Submit { job });
    }

    /// Generates and schedules one feasible job per schedule instant.
    pub fn submit_schedule(&mut self, schedule: &SubmissionSchedule, jobs: &mut JobGenerator) {
        let mut workload_rng = self.rng.fork(3);
        let profiles = self.profiles.clone();
        for at in schedule.times() {
            let job = jobs.generate_feasible(at, &profiles, &mut workload_rng);
            self.submit_job(at, job);
        }
    }

    /// Runs to completion and returns the metrics.
    pub fn run(&mut self) -> &MetricsCollector {
        while let Some((now, event)) = self.events.pop() {
            match event {
                Event::Submit { job } => self.place(now, job),
                Event::Complete { node } => self.complete(now, node),
                Event::Sample => self.sample(now),
            }
        }
        &self.metrics
    }

    /// Assigns a job to the globally cheapest matching node (cost-kind
    /// compatible, as in the distributed protocol).
    fn place(&mut self, now: SimTime, job: JobSpec) {
        self.metrics.job_submitted(&job, now);
        let winner = self
            .queues
            .iter()
            .zip(&self.profiles)
            .enumerate()
            .filter(|(_, (queue, profile))| {
                job.requirements.matches(profile)
                    && (queue.policy().cost_kind() == aria_grid::CostKind::Nal) == job.is_deadline()
            })
            .min_by_key(|(_, (queue, profile))| queue.cost_of_candidate(&job, now, profile))
            .map(|(i, _)| i);
        let Some(node) = winner else {
            return; // infeasible: the record stays incomplete
        };
        self.metrics.job_assigned(job.id, now, false);
        let profile = self.profiles[node];
        self.queues[node].enqueue(job, now, &profile);
        self.try_start(now, node);
    }

    fn try_start(&mut self, now: SimTime, node: usize) {
        let Some(running) = self.queues[node].start_next(now) else {
            return;
        };
        let spec = running.spec;
        let ertp = running.expected_end.saturating_since(running.started_at);
        let art = self.art.actual_running_time(spec.ert, ertp, &mut self.rng);
        self.metrics.job_started(spec.id, node as u32, now);
        self.events.schedule(now + art, Event::Complete { node });
    }

    fn complete(&mut self, now: SimTime, node: usize) {
        let finished = self.queues[node].complete_running().expect("running job completes");
        self.metrics.job_completed(finished.spec.id, now);
        self.try_start(now, node);
    }

    fn sample(&mut self, now: SimTime) {
        let idle = self.queues.iter().filter(|q| q.is_idle()).count();
        let queued = self.queues.iter().map(|q| q.waiting_len()).sum();
        self.metrics.sample_gauges(idle, queued);
        let next = now + self.sample_period;
        if next <= self.horizon {
            self.events.schedule(next, Event::Sample);
        }
    }

    /// The metrics collected so far.
    pub fn metrics(&self) -> &MetricsCollector {
        &self.metrics
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::Policy;

    fn scheduler(seed: u64) -> CentralScheduler {
        CentralScheduler::new(
            40,
            PolicyMix::paper_mixed(),
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        )
    }

    fn submit(central: &mut CentralScheduler, count: usize) {
        let mut jobs = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), count);
        central.submit_schedule(&schedule, &mut jobs);
    }

    #[test]
    fn completes_all_feasible_jobs() {
        let mut central = scheduler(1);
        submit(&mut central, 30);
        let metrics = central.run();
        assert_eq!(metrics.completed_count(), 30);
    }

    #[test]
    fn placements_match_requirements() {
        let mut central = scheduler(2);
        submit(&mut central, 25);
        central.run();
        // All jobs ran, and record metadata is complete.
        for record in central.metrics().records().values() {
            assert!(record.executed_on.is_some());
            assert_eq!(record.assignments, 1);
            assert_eq!(record.reschedules, 0);
        }
    }

    #[test]
    fn no_messages_are_exchanged() {
        let mut central = scheduler(3);
        submit(&mut central, 10);
        assert_eq!(central.run().traffic().total_messages(), 0);
    }

    #[test]
    fn deterministic_per_seed() {
        let run = |seed| {
            let mut c = scheduler(seed);
            submit(&mut c, 20);
            c.run().completion_summary().mean()
        };
        assert_eq!(run(4), run(4));
    }

    #[test]
    fn edf_only_grid_rejects_batch_jobs() {
        let mut central = CentralScheduler::new(
            10,
            PolicyMix::Uniform(Policy::Edf),
            SimTime::from_hours(4),
            SimDuration::from_mins(5),
            5,
        );
        let mut jobs = JobGenerator::paper_batch();
        let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_mins(1), 5);
        central.submit_schedule(&schedule, &mut jobs);
        assert_eq!(central.run().completed_count(), 0);
    }
}
