//! Protocol and simulation configuration (§IV-E defaults).

use crate::fault::FaultPlan;
use crate::net::NetModel;
use aria_grid::Policy;
use aria_overlay::LatencyModel;
use aria_sim::{SimDuration, SimRng, SimTime};
use aria_workload::{ArtModel, ClampedNormal};
use serde::{Deserialize, Serialize};

/// The protocol's reliability-critical timing knobs, factored into one
/// struct so the simulator ([`AriaConfig`]) and the live node runtime
/// (`aria-node`'s config) share a single source of defaults — sim and
/// live cannot silently disagree on offer windows or the ASSIGN-ACK
/// retransmit schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProtocolTiming {
    /// How long an initiator collects ACCEPT offers before delegating.
    pub accept_window: SimDuration,
    /// Delay before re-flooding a REQUEST that received no offer.
    pub request_retry: SimDuration,
    /// Give up re-flooding after this many attempts.
    pub max_request_rounds: u32,
    /// How long an assigner waits for the assignee's ACK before
    /// retransmitting an ASSIGN.
    pub assign_ack_timeout: SimDuration,
    /// ASSIGN retransmit budget before falling back to the next-best
    /// offer and then the §III-D failsafe.
    pub assign_max_retries: u32,
}

impl Default for ProtocolTiming {
    fn default() -> Self {
        ProtocolTiming {
            accept_window: SimDuration::from_secs(5),
            request_retry: SimDuration::from_secs(60),
            max_request_rounds: 50,
            assign_ack_timeout: SimDuration::from_secs(2),
            assign_max_retries: 4,
        }
    }
}

/// Tunable parameters of the ARiA protocol.
///
/// Defaults reproduce the paper's baseline (§IV-E): REQUEST floods travel
/// at most 9 hops contacting up to 4 random neighbors per step; INFORM
/// floods use at most 8 hops and 2 neighbors; at most 2 jobs are
/// advertised every 5 minutes; rescheduling requires a 3-minute
/// improvement.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AriaConfig {
    /// Hop budget for REQUEST floods (paper: 9).
    pub request_hops: u32,
    /// Neighbors contacted per REQUEST forwarding step (paper: 4).
    pub request_fanout: usize,
    /// Hop budget for INFORM floods (paper: 8).
    pub inform_hops: u32,
    /// Neighbors contacted per INFORM forwarding step (paper: 2).
    pub inform_fanout: usize,
    /// Whether dynamic rescheduling (INFORM phase) is enabled — the
    /// paper's `i*` scenarios.
    pub rescheduling: bool,
    /// How often an assignee advertises jobs for rescheduling (paper:
    /// every 5 minutes).
    pub inform_period: SimDuration,
    /// Maximum jobs advertised per period (paper baseline: 2; the
    /// *iInform1*/*iInform4* scenarios use 1 and 4).
    pub inform_batch: usize,
    /// Minimum cost improvement for a rescheduling offer/move (paper
    /// baseline: 3 minutes; *iInform15m*/*iInform30m* raise it).
    pub reschedule_threshold: SimDuration,
    /// How long an initiator collects ACCEPT offers before delegating.
    pub accept_window: SimDuration,
    /// Delay before re-flooding a REQUEST that received no offer.
    pub request_retry: SimDuration,
    /// Give up re-flooding after this many attempts (safety valve for
    /// infeasible jobs; the record then stays incomplete).
    pub max_request_rounds: u32,
    /// Number of overlay hops a point-to-point reply (ACCEPT/ASSIGN)
    /// traverses for latency purposes. Replies are *counted* as one
    /// message (§V-E sizes) but *timed* as a short overlay route.
    pub reply_hops: u32,
    /// How long an assigner waits for the assignee's ACK before
    /// retransmitting an ASSIGN. Only armed when the world's
    /// [`FaultPlan`] is active — on a reliable transport ASSIGNs are
    /// never acknowledged and this is dead config.
    pub assign_ack_timeout: SimDuration,
    /// ASSIGN retransmit budget: after this many unacknowledged
    /// retries (exponential backoff on [`AriaConfig::assign_ack_timeout`])
    /// the assigner falls back to the next-best recorded offer, then to
    /// the §III-D failsafe.
    pub assign_max_retries: u32,
    /// Whether a node that can satisfy a REQUEST/INFORM also keeps
    /// forwarding it. The paper's text has matching nodes reply instead
    /// of forwarding; this flag exposes the alternative for ablation.
    pub forward_on_match: bool,
}

impl Default for AriaConfig {
    fn default() -> Self {
        let timing = ProtocolTiming::default();
        AriaConfig {
            request_hops: 9,
            request_fanout: 4,
            inform_hops: 8,
            inform_fanout: 2,
            rescheduling: true,
            inform_period: SimDuration::from_mins(5),
            inform_batch: 2,
            reschedule_threshold: SimDuration::from_mins(3),
            accept_window: timing.accept_window,
            request_retry: timing.request_retry,
            max_request_rounds: timing.max_request_rounds,
            reply_hops: 4,
            assign_ack_timeout: timing.assign_ack_timeout,
            assign_max_retries: timing.assign_max_retries,
            forward_on_match: false,
        }
    }
}

impl AriaConfig {
    /// The paper's baseline with rescheduling disabled (plain scenarios).
    pub fn without_rescheduling() -> Self {
        AriaConfig { rescheduling: false, ..AriaConfig::default() }
    }

    /// The reliability-timing view of this config (the slice shared with
    /// the live node runtime).
    pub fn timing(&self) -> ProtocolTiming {
        ProtocolTiming {
            accept_window: self.accept_window,
            request_retry: self.request_retry,
            max_request_rounds: self.max_request_rounds,
            assign_ack_timeout: self.assign_ack_timeout,
            assign_max_retries: self.assign_max_retries,
        }
    }

    /// Applies a [`ProtocolTiming`] wholesale (how the node runtime's
    /// config overrides land back on the protocol parameters).
    pub fn with_timing(self, timing: ProtocolTiming) -> Self {
        AriaConfig {
            accept_window: timing.accept_window,
            request_retry: timing.request_retry,
            max_request_rounds: timing.max_request_rounds,
            assign_ack_timeout: timing.assign_ack_timeout,
            assign_max_retries: timing.assign_max_retries,
            ..self
        }
    }
}

/// Which overlay family connects the grid (paper future work §VI:
/// "experiments with different types of peer-to-peer overlay networks").
///
/// The paper's evaluation uses the self-organized BLATANT-S overlay; the
/// alternatives let the meta-scheduling performance be studied as a
/// function of the overlay topology.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum OverlayKind {
    /// BLATANT-S-style swarm-maintained overlay with the given average
    /// path length bound (the paper's setting; default bound 9).
    #[default]
    Blatant,
    /// Connected random graph with average degree `degree`.
    RandomRegular {
        /// Target average degree (≥ 2).
        degree: usize,
    },
    /// Watts-Strogatz small world (`k` lattice neighbors, rewiring
    /// probability `beta`).
    SmallWorld {
        /// Lattice degree (even, ≥ 2).
        k: usize,
        /// Rewiring probability in `[0, 1]`.
        beta: f64,
    },
    /// A bidirectional ring — the degenerate baseline (linear diameter).
    Ring,
}

/// Advance-reservation load for a world (paper future work §VI): how
/// many executor windows each node commits ahead of time, outside the
/// meta-scheduler's control.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ReservationPlan {
    /// Expected number of reservation windows per node over the horizon.
    pub mean_per_node: f64,
    /// Window length distribution.
    pub duration: ClampedNormal,
}

impl ReservationPlan {
    /// A moderate default: two windows per node over the horizon, each
    /// 1-4 hours long (mean 2h).
    pub fn moderate() -> Self {
        ReservationPlan {
            mean_per_node: 2.0,
            duration: ClampedNormal::new(
                SimDuration::from_hours(2),
                SimDuration::from_hours(1),
                SimDuration::from_hours(1),
                SimDuration::from_hours(4),
            ),
        }
    }
}

/// How local scheduling policies are distributed over the grid's nodes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum PolicyMix {
    /// Every node runs the same policy.
    Uniform(Policy),
    /// Each node draws one policy uniformly at random from the list
    /// (the paper's *Mixed* scenarios use `[FCFS, SJF]` one-to-one).
    Random(Vec<Policy>),
}

impl PolicyMix {
    /// The paper's *Mixed* scenario: FCFS and SJF, one-to-one at random.
    pub fn paper_mixed() -> Self {
        PolicyMix::Random(vec![Policy::Fcfs, Policy::Sjf])
    }

    /// Samples the policy for one node.
    pub fn sample(&self, rng: &mut SimRng) -> Policy {
        match self {
            PolicyMix::Uniform(policy) => *policy,
            PolicyMix::Random(policies) => *rng.choose(policies),
        }
    }
}

/// Full configuration of a simulated grid world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorldConfig {
    /// Number of nodes in the initial overlay (paper: 500).
    pub nodes: usize,
    /// Overlay family (paper: the self-organized BLATANT-S overlay).
    pub overlay: OverlayKind,
    /// Target average path length of the self-organized overlay
    /// (paper: 9 hops). Only used by [`OverlayKind::Blatant`].
    pub overlay_path_length: f64,
    /// Link latency model.
    pub latency: LatencyModel,
    /// Local scheduling policy distribution.
    pub policies: PolicyMix,
    /// Protocol parameters.
    pub aria: AriaConfig,
    /// Actual-running-time error model (paper baseline: ±10 %).
    pub art: ArtModel,
    /// End of the simulated observation window (paper: 41h40m).
    /// Gauge sampling and INFORM ticks stop here; in-flight work still
    /// drains so every assigned job completes.
    pub horizon: SimTime,
    /// Gauge sampling period for the time-series figures.
    pub sample_period: SimDuration,
    /// Nodes joining after the start (the *Expanding* scenarios): each
    /// entry is a join instant.
    pub joins: Vec<SimTime>,
    /// Failure injection: at each instant one random alive node crashes,
    /// losing its waiting and running jobs (§III-D's "event of an
    /// assignee's crash"). Empty in all paper scenarios.
    pub crashes: Vec<SimTime>,
    /// The failsafe mechanism of §III-D: initiators track their jobs'
    /// assignees, detect a crash after [`WorldConfig::failsafe_detection`]
    /// and re-run the discovery phase for the lost jobs.
    pub failsafe: bool,
    /// How long until an initiator notices its job's assignee crashed.
    pub failsafe_detection: SimDuration,
    /// Advance-reservation load committed on the nodes' executors
    /// (`None` in all paper scenarios).
    pub reservations: Option<ReservationPlan>,
    /// The transport model resolving initiator placement, fanout picks
    /// and latencies ([`NetModel::Sampled`] in every paper scenario;
    /// [`NetModel::Lockstep`] only in exhaustive-exploration worlds).
    #[serde(default)]
    pub net: NetModel,
    /// Transport fault injection ([`FaultPlan::none`] — i.e. a reliable
    /// network — in every paper scenario; the chaos harness and the
    /// `loss-sweep` study activate it).
    #[serde(default)]
    pub fault: FaultPlan,
}

impl WorldConfig {
    /// The paper's baseline world: 500 nodes, mixed FCFS/SJF policies,
    /// 41h40m horizon, one gauge sample per minute.
    pub fn paper_baseline() -> Self {
        WorldConfig {
            nodes: 500,
            overlay: OverlayKind::Blatant,
            overlay_path_length: 9.0,
            latency: LatencyModel::default(),
            policies: PolicyMix::paper_mixed(),
            aria: AriaConfig::default(),
            art: ArtModel::paper_baseline(),
            horizon: SimTime::from_mins(41 * 60 + 40),
            sample_period: SimDuration::from_mins(5),
            joins: Vec::new(),
            crashes: Vec::new(),
            failsafe: true,
            failsafe_detection: SimDuration::from_mins(5),
            reservations: None,
            net: NetModel::Sampled,
            fault: FaultPlan::none(),
        }
    }

    /// The paper's *Expanding* world: 200 extra nodes joining every 50 s
    /// from 1h23m (reaching 700 nodes around 4h10m).
    pub fn paper_expanding() -> Self {
        let first_join = SimTime::from_mins(83);
        let joins = (0..200u64)
            .map(|i| first_join + SimDuration::from_secs(50) * i)
            .collect();
        WorldConfig { joins, ..WorldConfig::paper_baseline() }
    }

    /// A small, fast world for tests and examples: `n` nodes, shorter
    /// horizon, everything else at paper defaults.
    pub fn small_test(n: usize) -> Self {
        WorldConfig {
            nodes: n,
            overlay_path_length: 4.0,
            horizon: SimTime::from_hours(12),
            ..WorldConfig::paper_baseline()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper_section_iv_e() {
        let c = AriaConfig::default();
        assert_eq!(c.request_hops, 9);
        assert_eq!(c.request_fanout, 4);
        assert_eq!(c.inform_hops, 8);
        assert_eq!(c.inform_fanout, 2);
        assert_eq!(c.inform_batch, 2);
        assert_eq!(c.inform_period, SimDuration::from_mins(5));
        assert_eq!(c.reschedule_threshold, SimDuration::from_mins(3));
        assert!(c.rescheduling);
        assert!(!c.forward_on_match);
        // ASSIGN hardening knobs (only live under an active FaultPlan).
        assert_eq!(c.assign_ack_timeout, SimDuration::from_secs(2));
        assert_eq!(c.assign_max_retries, 4);
    }

    #[test]
    fn timing_slice_roundtrips_and_sources_the_defaults() {
        let c = AriaConfig::default();
        // One source of truth: the default protocol timing *is* the
        // default timing slice of AriaConfig.
        assert_eq!(c.timing(), ProtocolTiming::default());
        assert_eq!(c.with_timing(c.timing()), c);
        // An override lands on exactly the timing fields.
        let fast = ProtocolTiming {
            accept_window: SimDuration::from_millis(300),
            request_retry: SimDuration::from_secs(1),
            max_request_rounds: 10,
            assign_ack_timeout: SimDuration::from_millis(200),
            assign_max_retries: 6,
        };
        let tuned = c.with_timing(fast);
        assert_eq!(tuned.timing(), fast);
        assert_eq!(tuned.with_timing(ProtocolTiming::default()), c);
    }

    #[test]
    fn without_rescheduling_only_flips_the_flag() {
        let base = AriaConfig::default();
        let plain = AriaConfig::without_rescheduling();
        assert!(!plain.rescheduling);
        assert_eq!(AriaConfig { rescheduling: true, ..plain }, base);
    }

    #[test]
    fn policy_mix_uniform_always_same() {
        let mut rng = SimRng::seed_from(1);
        let mix = PolicyMix::Uniform(Policy::Fcfs);
        for _ in 0..10 {
            assert_eq!(mix.sample(&mut rng), Policy::Fcfs);
        }
    }

    #[test]
    fn policy_mix_random_is_roughly_even() {
        let mut rng = SimRng::seed_from(2);
        let mix = PolicyMix::paper_mixed();
        let n = 10_000;
        let fcfs = (0..n).filter(|_| mix.sample(&mut rng) == Policy::Fcfs).count();
        assert!((fcfs as f64 / n as f64 - 0.5).abs() < 0.02);
    }

    #[test]
    fn overlay_kind_defaults_to_blatant() {
        assert_eq!(OverlayKind::default(), OverlayKind::Blatant);
        assert_eq!(WorldConfig::paper_baseline().overlay, OverlayKind::Blatant);
    }

    #[test]
    fn paper_baseline_window() {
        let w = WorldConfig::paper_baseline();
        assert_eq!(w.nodes, 500);
        assert_eq!(w.horizon, SimTime::from_mins(2500)); // 41h40m
        assert!(w.joins.is_empty());
        // No failure injection in any paper scenario, but the failsafe is
        // armed by default.
        assert!(w.crashes.is_empty());
        assert!(w.failsafe);
        assert!(w.reservations.is_none());
        // The paper assumes a reliable transport: no fault injection.
        assert_eq!(w.fault, FaultPlan::none());
        assert!(!w.fault.is_active());
    }

    #[test]
    fn moderate_reservation_plan_is_sane() {
        let plan = ReservationPlan::moderate();
        assert!(plan.mean_per_node > 0.0);
        assert!(plan.duration.min >= SimDuration::from_hours(1));
    }

    #[test]
    fn expanding_world_joins_200_nodes() {
        let w = WorldConfig::paper_expanding();
        assert_eq!(w.joins.len(), 200);
        assert_eq!(w.joins[0], SimTime::from_mins(83));
        // Last join around 4h10m.
        let last = *w.joins.last().unwrap();
        assert!(last <= SimTime::from_mins(4 * 60 + 10));
        assert!(last > SimTime::from_mins(4 * 60 + 5));
    }
}
