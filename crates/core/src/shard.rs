//! Sharded deterministic executor: parallelism inside the latency
//! horizon, bit-for-bit identical to the serial runner.
//!
//! `cargo xtask horizon` (DESIGN.md §14) statically proves the
//! *lookahead* property of conservative parallel discrete-event
//! simulation for this world: every cross-node event is an
//! [`Event::Deliver`] scheduled exclusively inside `World::transmit`
//! with a delay of `now + latency (+ jitter…)`, and under
//! [`NetModel::Sampled`] every latency draw is bounded below by the
//! configured [`LatencyModel`] minimum. The committed `HORIZON.json` is
//! that proof's artifact; this module is its consumer.
//!
//! ## Execution model
//!
//! [`World::run_sharded`] advances the simulation in *windows* of one
//! latency floor: if the earliest pending event is at `T`, every event
//! in `[T, T + floor)` is causally closed — no handler running inside
//! the window can schedule a cross-node delivery that also lands inside
//! it (its delay is at least the floor). Per window:
//!
//! 1. **Barrier / snapshot** — record the event queue's sequence
//!    boundary and bucket the window's pending REQUEST/INFORM
//!    deliveries into per-region queues (region = destination node id
//!    mod shard count, a static overlay partition).
//! 2. **Parallel phase** — scoped worker threads (permits drawn from
//!    [`aria_sim::pool`], so scenarios × shards never oversubscribe the
//!    machine) precompute each delivery's candidate-cost quote — the
//!    pure, RNG-free kernel of the ACCEPT phase — against the frozen
//!    window-start state. Results merge into the world's bid cache in
//!    ascending region order.
//! 3. **Serial replay** — events are popped and handled in the exact
//!    global `(time, seq)` order of [`World::run`]; handlers consume
//!    cached quotes via `World::candidate_cost`. Before each event, a
//!    conservative purge drops every cached quote the event's handler
//!    could invalidate (see [`purge_for`](World::purge_for)), so a hit
//!    is always bit-identical to computing in place — debug builds
//!    re-derive every hit to prove it.
//!
//! Because replay order equals serial order and every consumed quote is
//! provably equal to the serially computed one, metrics, RNG streams,
//! probe traces and final state are bit-for-bit identical to
//! [`World::run`] *by construction* — `tests/sharded_parallel.rs` and
//! the CI probe-diff job pin it empirically.
//!
//! ## Runtime horizon audit
//!
//! The static proof is revalidated while running: the executor loads
//! `HORIZON.json` at compile time, checks the event-class table against
//! [`RUNTIME_CLASSES`] (drift panics with a regeneration hint), and
//! panics on any cross-node delivery popped inside the window it was
//! scheduled in — the dynamic counterpart of the analyzer's
//! `transmit-bypass`/`unbounded-delay` rules.

use crate::dense::JobTable;
use crate::net::NetModel;
use crate::world::{Event, NodeState, World};
#[cfg(debug_assertions)]
use crate::world::INVARIANT_STRIDE;
use crate::msg::Message;
use aria_grid::{Cost, JobId};
use aria_metrics::MetricsCollector;
use aria_overlay::NodeId;
use aria_probe::Probe;
use aria_sim::{pool, SimTime};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicUsize, Ordering};

/// The committed latency-horizon contract, embedded at compile time so
/// a stale checkout cannot run sharded against a drifted proof.
pub const HORIZON_CONTRACT: &str =
    include_str!(concat!(env!("CARGO_MANIFEST_DIR"), "/../../HORIZON.json"));

/// Contract schema revision this executor understands.
const CONTRACT_VERSION: u64 = 1;

/// Below this many snapshot deliveries a window is precomputed on the
/// calling thread: spawning scoped workers costs more than the quotes.
const PARALLEL_THRESHOLD: usize = 64;

/// The runtime's own event classification, which must agree with the
/// analyzer's (`HORIZON.json` `events` table; kebab handler name →
/// class). [`HorizonContract::validate`] checks both directions, so an
/// `Event` variant added or reclassified on either side fails loudly
/// with a regeneration hint instead of silently missharding.
pub const RUNTIME_CLASSES: &[(&str, &str)] = &[
    ("accept-window-closed", "shard-local"),
    ("assign-timeout", "global"),
    ("crash", "global"),
    ("deliver", "cross-node"),
    ("dispatch-retry", "shard-local"),
    ("execution-complete", "shard-local"),
    ("inform-tick", "shard-local"),
    ("join", "global"),
    ("partition-end", "global"),
    ("partition-start", "global"),
    ("recover-job", "global"),
    ("retry-request", "shard-local"),
    ("sample", "global"),
    ("submit", "global"),
];

/// The parsed slice of `HORIZON.json` the executor relies on.
#[derive(Debug, Clone)]
pub struct HorizonContract {
    /// Schema revision (must equal [`CONTRACT_VERSION`]).
    pub version: u64,
    /// The default latency model's floor, for reporting only — the
    /// executor always takes the *configured* model's minimum.
    pub default_min_ms: u64,
    /// Event classification: kebab handler name → horizon class.
    pub classes: BTreeMap<String, String>,
}

impl HorizonContract {
    /// Parses the committed contract.
    pub fn load() -> Result<Self, String> {
        Self::parse(HORIZON_CONTRACT)
    }

    /// Minimal line-oriented parse of the analyzer's deterministic
    /// output (each `events` entry is one line; see `render_json` in
    /// crates/xtask/src/horizon.rs).
    fn parse(text: &str) -> Result<Self, String> {
        fn field_u64(text: &str, key: &str) -> Result<u64, String> {
            let tag = format!("\"{key}\": ");
            let start = text.find(&tag).ok_or_else(|| format!("HORIZON.json: no `{key}`"))?;
            let rest = &text[start + tag.len()..];
            let digits: String = rest.chars().take_while(char::is_ascii_digit).collect();
            digits.parse().map_err(|_| format!("HORIZON.json: bad `{key}`"))
        }
        fn quoted_after<'t>(line: &'t str, tag: &str) -> Option<&'t str> {
            let rest = &line[line.find(tag)? + tag.len()..];
            rest.split('"').nth(1)
        }
        let version = field_u64(text, "version")?;
        let default_min_ms = field_u64(text, "default_min_ms")?;
        let mut classes = BTreeMap::new();
        let mut in_events = false;
        for line in text.lines() {
            let trimmed = line.trim();
            if trimmed == "\"events\": {" {
                in_events = true;
                continue;
            }
            if in_events {
                if trimmed.starts_with('}') {
                    break;
                }
                let name = trimmed
                    .split('"')
                    .nth(1)
                    .ok_or_else(|| format!("HORIZON.json: malformed events entry `{trimmed}`"))?;
                let class = quoted_after(trimmed, "\"class\": ")
                    .ok_or_else(|| format!("HORIZON.json: events entry without class `{trimmed}`"))?;
                classes.insert(name.to_string(), class.to_string());
            }
        }
        if classes.is_empty() {
            return Err("HORIZON.json: empty events table".into());
        }
        Ok(HorizonContract { version, default_min_ms, classes })
    }

    /// Asserts the contract matches this executor: the schema revision
    /// is understood and the event-class table equals
    /// [`RUNTIME_CLASSES`] exactly, both directions.
    pub fn validate(&self) -> Result<(), String> {
        if self.version != CONTRACT_VERSION {
            return Err(format!(
                "HORIZON.json version {} but this executor understands {CONTRACT_VERSION}",
                self.version
            ));
        }
        for &(name, class) in RUNTIME_CLASSES {
            match self.classes.get(name).map(String::as_str) {
                Some(c) if c == class => {}
                Some(c) => {
                    return Err(format!(
                        "HORIZON.json classifies `{name}` as `{c}` but the executor expects \
                         `{class}` — regenerate with `cargo xtask horizon` and review the drift"
                    ));
                }
                None => {
                    return Err(format!(
                        "HORIZON.json has no `{name}` entry — regenerate with `cargo xtask horizon`"
                    ));
                }
            }
        }
        for name in self.classes.keys() {
            if RUNTIME_CLASSES.binary_search_by(|(n, _)| n.cmp(&name.as_str())).is_err() {
                return Err(format!(
                    "HORIZON.json classifies `{name}` but the executor has no such event — \
                     update RUNTIME_CLASSES (crates/core/src/shard.rs)"
                ));
            }
        }
        Ok(())
    }
}

/// Whether a popped in-window event breaks the latency-horizon
/// contract: a cross-node delivery whose sequence number is at or past
/// the window barrier was scheduled *during* the window yet lands
/// inside it — possible only if an edge bypassed `World::transmit` or
/// quoted a sub-floor delay.
fn horizon_violation(event: &Event, seq: u64, boundary: u64) -> bool {
    seq >= boundary && matches!(event, Event::Deliver { .. })
}

/// Precomputes the candidate-cost quotes for one region bucket against
/// frozen window-start state. Pure: reads node state and interned
/// specs, draws no randomness, writes nothing.
/// One region's precomputed quotes, keyed exactly like `bid_cache`.
type RegionBids = Vec<((NodeId, JobId, SimTime), Cost)>;

fn bucket_bids(
    nodes: &[NodeState],
    jobs: &JobTable,
    bucket: &[(SimTime, NodeId, JobId)],
) -> RegionBids {
    let mut out = Vec::with_capacity(bucket.len());
    for &(at, to, job) in bucket {
        let node = &nodes[to.index()];
        if !node.alive {
            continue;
        }
        let spec = jobs.spec(job);
        if !World::<aria_probe::NullProbe>::node_can_bid(node, &spec) {
            continue;
        }
        out.push(((to, job, at), node.queue.cost_of_candidate(&spec, at, &node.profile)));
    }
    out
}

impl<P: Probe> World<P> {
    /// Runs the simulation to completion like [`World::run`], but
    /// windowed at the latency horizon with the per-window ACCEPT-phase
    /// cost quotes precomputed in parallel across `shards` regions (see
    /// the [module docs](self) for the execution model). Metrics, RNG
    /// draws, probe traces and final state are bit-for-bit identical to
    /// the serial runner at any shard count.
    ///
    /// # Panics
    ///
    /// * if `shards` is zero;
    /// * if the configured transport is [`NetModel::Lockstep`], which
    ///   collapses latencies to zero and leaves no horizon to window on;
    /// * if the embedded `HORIZON.json` fails [`HorizonContract::validate`];
    /// * on a runtime horizon violation — a cross-node delivery landing
    ///   inside the window that scheduled it.
    pub fn run_sharded(&mut self, shards: usize) -> &MetricsCollector {
        self.run_sharded_gated(shards, PARALLEL_THRESHOLD)
    }

    /// [`World::run_sharded`] with an explicit parallel-phase gate —
    /// tests pass 0 to force the scoped-thread path on tiny worlds.
    pub(crate) fn run_sharded_gated(
        &mut self,
        shards: usize,
        threshold: usize,
    ) -> &MetricsCollector {
        assert!(shards > 0, "run_sharded needs at least one shard");
        let contract = HorizonContract::load().expect("embedded HORIZON.json must parse");
        if let Err(drift) = contract.validate() {
            panic!("latency-horizon contract drift: {drift}");
        }
        let floor = match self.config.net {
            NetModel::Sampled => self.config.latency.min(),
            NetModel::Lockstep => panic!(
                "run_sharded requires NetModel::Sampled: Lockstep collapses latencies to \
                 zero, so there is no latency horizon to window on (HORIZON.json floor.guard)"
            ),
        };
        // LatencyModel::new rejects a zero minimum, so this only trips
        // on a constructor bypass.
        assert!(!floor.is_zero(), "latency floor must be positive to window on");

        while let Some(window_start) = self.events.peek_time() {
            let window_end = window_start + floor;
            let seq_boundary = self.events.next_seq();

            // Barrier snapshot: bucket the window's REQUEST/INFORM
            // deliveries into per-region queues.
            let mut buckets: Vec<Vec<(SimTime, NodeId, JobId)>> = vec![Vec::new(); shards];
            let mut snapshot = 0usize;
            self.events.entries_before(window_end, |at, _, event| {
                if let Event::Deliver { to, msg } = event {
                    let job = match msg {
                        Message::Request { job, .. } | Message::Inform { job, .. } => Some(*job),
                        Message::Accept { .. } | Message::Assign { .. } | Message::Ack { .. } => {
                            None
                        }
                    };
                    if let Some(job) = job {
                        buckets[to.index() % shards].push((at, *to, job));
                        snapshot += 1;
                    }
                }
            });

            // The cache is pure memoization — `candidate_cost` computes
            // on a miss, bit-identically — so the precompute only runs
            // when the pool actually grants extra workers. With a zero
            // grant (budget exhausted, or one shard) precomputing on
            // the calling thread would just shuffle the same serial
            // work around, plus purge losses.
            let reservation = pool::reserve(shards.saturating_sub(1));
            if snapshot >= threshold.max(1) && reservation.workers() > 0 {
                // Deterministic intra-region order (the heap iterates in
                // layout order); results merge in ascending region order.
                for bucket in &mut buckets {
                    bucket.sort_unstable();
                }
                let nodes = &self.nodes;
                let jobs = &self.jobs;
                let cursor = AtomicUsize::new(0);
                let claim = |out: &mut Vec<(usize, Vec<_>)>| loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= buckets.len() {
                        break;
                    }
                    out.push((i, bucket_bids(nodes, jobs, &buckets[i])));
                };
                let mut computed: Vec<(usize, RegionBids)> =
                    std::thread::scope(|scope| {
                        let handles: Vec<_> = (0..reservation.workers())
                            .map(|_| {
                                scope.spawn(|| {
                                    let mut out = Vec::new();
                                    claim(&mut out);
                                    out
                                })
                            })
                            .collect();
                        let mut all = Vec::new();
                        claim(&mut all);
                        for handle in handles {
                            all.extend(handle.join().expect("shard precompute worker panicked"));
                        }
                        all
                    });
                computed.sort_unstable_by_key(|&(region, _)| region);
                for (_, bids) in computed {
                    for (key, cost) in bids {
                        self.bid_cache.insert(key, cost);
                    }
                }
            }
            drop(reservation);

            // Serial replay in exact global (time, seq) order.
            while self.events.peek_time().is_some_and(|t| t < window_end) {
                let (now, seq, event) = self.events.pop_entry().expect("peeked event exists");
                if horizon_violation(&event, seq, seq_boundary) {
                    panic!(
                        "latency-horizon violation: cross-node delivery at {now} landed inside \
                         the open window [{window_start}, {window_end}) that scheduled it — \
                         World::transmit was bypassed or a delay undercut the latency floor \
                         ({floor}); rerun `cargo xtask horizon --check`"
                    );
                }
                self.purge_for(&event);
                self.processed += 1;
                self.handle(now, event);
                #[cfg(debug_assertions)]
                if self.processed.is_multiple_of(INVARIANT_STRIDE) {
                    self.check_invariants();
                }
            }
            self.bid_cache.clear();
        }
        #[cfg(debug_assertions)]
        self.check_invariants();
        &self.metrics
    }

    /// Drops every cached quote `event`'s handler could invalidate,
    /// *before* the handler runs.
    ///
    /// The table is deliberately conservative — purging a still-valid
    /// quote only costs a recompute (purity makes the recomputed value
    /// identical), while keeping a stale one would change results — so
    /// each arm covers every node whose queue, profile or liveness the
    /// handler can possibly touch:
    ///
    /// * ACCEPT may migrate a waiting job off its assignee's queue;
    ///   ASSIGN enqueues (and may start) on the assignee; ACK closes a
    ///   delegation on both endpoints.
    /// * `AcceptWindowClosed` self-assigns to the initiator when it won
    ///   its own auction; `ExecutionComplete`/`DispatchRetry`/
    ///   `InformTick` touch their node's executor and queue.
    /// * Join/Crash/RecoverJob/AssignTimeout can reshape liveness or
    ///   assign to arbitrary nodes — everything goes.
    /// * REQUEST/INFORM deliveries, submissions, samples and partition
    ///   edges read queues but never mutate them.
    fn purge_for(&mut self, event: &Event) {
        if self.bid_cache.is_empty() {
            return;
        }
        match event {
            Event::Deliver { to, msg } => match msg {
                Message::Request { .. } | Message::Inform { .. } => {}
                Message::Accept { .. } | Message::Assign { .. } => self.purge_node(*to),
                Message::Ack { from, .. } => {
                    let from = *from;
                    self.purge_node(*to);
                    self.purge_node(from);
                }
            },
            Event::AcceptWindowClosed { initiator, .. }
            | Event::RetryRequest { initiator, .. } => self.purge_node(*initiator),
            Event::ExecutionComplete { node, .. }
            | Event::InformTick { node }
            | Event::DispatchRetry { node } => self.purge_node(*node),
            Event::Submit { .. }
            | Event::Sample
            | Event::PartitionStart { .. }
            | Event::PartitionEnd { .. } => {}
            Event::Join
            | Event::Crash
            | Event::RecoverJob { .. }
            | Event::AssignTimeout { .. } => self.bid_cache.clear(),
        }
    }

    /// Drops every cached quote by node `node`.
    fn purge_node(&mut self, node: NodeId) {
        self.bid_cache.retain(|&(to, _, _), _| to != node);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::WorldConfig;
    use crate::fault::{FaultPlan, PartitionWindow};
    use aria_sim::{SimDuration, SimTime};
    use aria_workload::{JobGenerator, SubmissionSchedule};

    fn seeded_world(config: WorldConfig, seed: u64, jobs: usize) -> World {
        let mut world = World::new(config, seed);
        let mut generator = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(45), jobs);
        world.submit_schedule(&schedule, &mut generator);
        world
    }

    #[test]
    fn contract_parses_and_matches_runtime_classes() {
        let contract = HorizonContract::load().expect("embedded contract parses");
        assert_eq!(contract.version, CONTRACT_VERSION);
        assert!(contract.default_min_ms > 0);
        assert_eq!(contract.classes.len(), RUNTIME_CLASSES.len());
        contract.validate().expect("committed HORIZON.json agrees with the executor");
    }

    #[test]
    fn validate_catches_drift_in_both_directions() {
        let mut contract = HorizonContract::load().unwrap();
        contract.classes.insert("deliver".into(), "global".into());
        assert!(contract.validate().unwrap_err().contains("deliver"));
        let mut contract = HorizonContract::load().unwrap();
        contract.classes.remove("sample");
        assert!(contract.validate().unwrap_err().contains("sample"));
        let mut contract = HorizonContract::load().unwrap();
        contract.classes.insert("teleport".into(), "cross-node".into());
        assert!(contract.validate().unwrap_err().contains("teleport"));
        let mut contract = HorizonContract::load().unwrap();
        contract.version = 99;
        assert!(contract.validate().unwrap_err().contains("99"));
    }

    #[test]
    fn horizon_violation_flags_only_fresh_deliveries() {
        let deliver = Event::Deliver {
            to: NodeId::new(0),
            msg: Message::Ack { from: NodeId::new(1), job: JobId::new(0) },
        };
        assert!(horizon_violation(&deliver, 10, 10));
        assert!(!horizon_violation(&deliver, 9, 10), "snapshot members are legal");
        assert!(!horizon_violation(&Event::Sample, 10, 10), "only cross-node events count");
    }

    #[test]
    fn sharded_run_matches_serial_bit_for_bit() {
        for seed in [7, 41] {
            let mut serial = seeded_world(WorldConfig::small_test(30), seed, 12);
            serial.run();
            let reference = format!("{serial:?}");
            for shards in [1, 2, 4] {
                let mut sharded = seeded_world(WorldConfig::small_test(30), seed, 12);
                sharded.run_sharded(shards);
                assert_eq!(
                    format!("{sharded:?}"),
                    reference,
                    "shards={shards} seed={seed} diverged from serial"
                );
            }
        }
    }

    #[test]
    fn forced_parallel_phase_stays_bit_for_bit_under_churn_and_faults() {
        let mut config = WorldConfig::small_test(24);
        config.joins = vec![SimTime::from_mins(3)];
        config.crashes = vec![SimTime::from_mins(5)];
        config.fault = FaultPlan {
            loss: 0.05,
            duplicate: 0.03,
            jitter_ms: 40,
            partitions: vec![PartitionWindow {
                start: SimTime::from_mins(4),
                duration: SimDuration::from_mins(2),
            }],
            keep: None,
        };
        let mut serial = seeded_world(config.clone(), 13, 10);
        serial.run();
        let reference = format!("{serial:?}");
        for shards in [2, 8] {
            let mut sharded = seeded_world(config.clone(), 13, 10);
            // Gate 0: every window takes the scoped-thread precompute
            // path, so purge rules and cache hits are exercised even at
            // this scale (debug builds re-derive every hit).
            sharded.run_sharded_gated(shards, 0);
            assert_eq!(format!("{sharded:?}"), reference, "shards={shards} diverged");
        }
    }

    #[test]
    #[should_panic(expected = "requires NetModel::Sampled")]
    fn lockstep_worlds_are_rejected() {
        let mut config = WorldConfig::small_test(8);
        config.net = NetModel::Lockstep;
        let mut world = seeded_world(config, 3, 2);
        world.run_sharded(2);
    }
}
