//! The pure per-node decision kernels of the ARiA protocol.
//!
//! Every *decision* a node takes — whether to bid, which offer wins,
//! whether a rescheduling steal pays off, when a discovery round is
//! retried or abandoned, how an unacknowledged ASSIGN backs off — lives
//! here as a pure function of its inputs. Two callers drive the exact
//! same kernels:
//!
//! * the simulator's [`crate::World`] handlers, where the surrounding
//!   data plane is the global event queue, the interned job table and
//!   the world-wide flood table; and
//! * the sans-io [`crate::driver::NodeDriver`], where the data plane is
//!   one node's local books and the outputs are wire messages and timer
//!   requests executed by a real UDP runtime (`aria-node`).
//!
//! Keeping the decisions here means the live binary cannot drift from
//! the simulated protocol: a change to an admission rule or a backoff
//! schedule lands on both at once, and the simulator's golden tests pin
//! it bit-for-bit.

use aria_grid::{Cost, CostKind, JobSpec, NodeProfile, Policy};
use aria_sim::SimDuration;
use aria_overlay::NodeId;

/// Whether a node both matches a job's requirements and bids in the
/// job's cost family — batch (ETTC) offers are never mixed with
/// deadline (NAL) offers (§III-C).
pub fn can_bid(profile: &NodeProfile, policy: Policy, job: &JobSpec) -> bool {
    job.requirements.matches(profile) && (policy.cost_kind() == CostKind::Nal) == job.is_deadline()
}

/// Whether a freshly arrived offer beats the best one collected so far
/// (strictly lower cost; the first offer always wins).
pub fn better_offer(best: Option<(Cost, NodeId)>, cost: Cost) -> bool {
    match best {
        None => true,
        Some((incumbent, _)) => cost < incumbent,
    }
}

/// Whether a candidate cost undercuts an incumbent cost by strictly
/// more than the rescheduling threshold (§III-D) — the gate for both
/// sending a rescheduling bid and honoring one.
pub fn undercuts(candidate: Cost, incumbent: Cost, threshold: SimDuration) -> bool {
    candidate.improvement_over(incumbent) > threshold.as_millis() as i64
}

/// The next discovery round after an offer window closed empty, or
/// `None` when the retry budget is exhausted and the job is abandoned.
pub fn next_round(round: u32, max_request_rounds: u32) -> Option<u32> {
    let next = round + 1;
    (next < max_request_rounds).then_some(next)
}

/// Whether a node that can satisfy a flood hop also keeps forwarding it
/// (the paper's text has matching nodes reply *instead of* forwarding;
/// `forward_on_match` exposes the alternative), and whether hop budget
/// remains.
pub fn should_forward(bids: bool, forward_on_match: bool, hops_left: u32) -> bool {
    (!bids || forward_on_match) && hops_left > 1
}

/// Whether an unacknowledged ASSIGN may be retransmitted once more.
pub fn may_retransmit(attempt: u32, max_retries: u32) -> bool {
    attempt < max_retries
}

/// The bounded exponential backoff before retransmit `attempt` of an
/// unacknowledged ASSIGN (attempt 1 waits two timeouts, attempt 2 four,
/// capped at 2^16 to keep the shift defined).
pub fn assign_backoff(ack_timeout: SimDuration, attempt: u32) -> SimDuration {
    ack_timeout * (1u64 << attempt.min(16))
}

/// Removes and returns the cheapest recorded offer (ties keep the
/// earliest-recorded one; `swap_remove` keeps the scan linear).
pub fn pop_best_offer(offers: &mut Vec<(Cost, NodeId)>) -> Option<(Cost, NodeId)> {
    if offers.is_empty() {
        return None;
    }
    let mut best = 0;
    for i in 1..offers.len() {
        if offers[i].0 < offers[best].0 {
            best = i;
        }
    }
    Some(offers.swap_remove(best))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};
    use aria_sim::SimTime;

    fn amd64_linux() -> NodeProfile {
        NodeProfile::new(
            Architecture::Amd64,
            OperatingSystem::Linux,
            64,
            1000,
            aria_grid::PerfIndex::BASELINE,
        )
    }

    fn requirements() -> JobRequirements {
        JobRequirements {
            arch: Architecture::Amd64,
            os: OperatingSystem::Linux,
            min_memory_gb: 1,
            min_disk_gb: 1,
        }
    }

    fn batch_spec(id: u64) -> JobSpec {
        JobSpec::batch(aria_grid::JobId::new(id), requirements(), SimDuration::from_mins(10))
    }

    #[test]
    fn bidding_requires_matching_profile_and_cost_family() {
        let profile = amd64_linux();
        let spec = batch_spec(1);
        assert!(can_bid(&profile, Policy::Fcfs, &spec));
        // Deadline policies quote NAL; they must not bid on batch jobs.
        assert!(!can_bid(&profile, Policy::Edf, &spec));
        let deadline = JobSpec::with_deadline(
            aria_grid::JobId::new(2),
            requirements(),
            SimDuration::from_mins(10),
            SimTime::from_hours(1),
        );
        assert!(can_bid(&profile, Policy::Edf, &deadline));
        assert!(!can_bid(&profile, Policy::Fcfs, &deadline));
    }

    #[test]
    fn first_offer_wins_then_only_strict_improvements() {
        let a = NodeId::new(1);
        assert!(better_offer(None, Cost::from_nal(100)));
        assert!(!better_offer(Some((Cost::from_nal(100), a)), Cost::from_nal(100)));
        assert!(better_offer(Some((Cost::from_nal(100), a)), Cost::from_nal(99)));
    }

    #[test]
    fn undercut_threshold_is_strict() {
        let t = SimDuration::from_mins(3);
        let incumbent = Cost::from_nal(1_000_000);
        assert!(!undercuts(Cost::from_nal(1_000_000 - 180_000), incumbent, t));
        assert!(undercuts(Cost::from_nal(1_000_000 - 180_001), incumbent, t));
    }

    #[test]
    fn rounds_exhaust_into_abandonment() {
        assert_eq!(next_round(0, 50), Some(1));
        assert_eq!(next_round(48, 50), Some(49));
        assert_eq!(next_round(49, 50), None);
        assert_eq!(next_round(0, 1), None);
    }

    #[test]
    fn forwarding_stops_on_match_unless_configured() {
        assert!(should_forward(false, false, 2));
        assert!(!should_forward(true, false, 2));
        assert!(should_forward(true, true, 2));
        assert!(!should_forward(false, false, 1));
    }

    #[test]
    fn backoff_doubles_and_saturates() {
        let t = SimDuration::from_secs(2);
        assert_eq!(assign_backoff(t, 1), SimDuration::from_secs(4));
        assert_eq!(assign_backoff(t, 2), SimDuration::from_secs(8));
        assert_eq!(assign_backoff(t, 16), assign_backoff(t, 40));
        assert!(may_retransmit(3, 4));
        assert!(!may_retransmit(4, 4));
    }

    #[test]
    fn pop_best_offer_takes_cheapest_then_drains() {
        let (a, b, c) = (NodeId::new(1), NodeId::new(2), NodeId::new(3));
        let mut offers =
            vec![(Cost::from_nal(30), a), (Cost::from_nal(10), b), (Cost::from_nal(20), c)];
        assert_eq!(pop_best_offer(&mut offers), Some((Cost::from_nal(10), b)));
        assert_eq!(pop_best_offer(&mut offers), Some((Cost::from_nal(20), c)));
        assert_eq!(pop_best_offer(&mut offers), Some((Cost::from_nal(30), a)));
        assert_eq!(pop_best_offer(&mut offers), None);
    }
}
