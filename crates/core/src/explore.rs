//! Exploration hooks: the [`World`] as an explicit transition system.
//!
//! The event-queue driver ([`World::run`]) is one particular scheduler
//! over the world's pending events: it always fires the earliest
//! `(time, seq)` entry. This module exposes the same state under a
//! different driver contract — a pure, clonable `step(state, action)`
//! transition function — so the bounded model checker (`aria-model`)
//! can enumerate *every* delivery ordering instead of the one the queue
//! happens to produce.
//!
//! ## Time semantics
//!
//! Message delivery timestamps are transport artifacts: under arbitrary
//! non-negative link latencies, any pending message may arrive at any
//! point from its send instant onward. The checker therefore treats the
//! event queue as two pools:
//!
//! * **Deliveries** — every pending [`Event::Deliver`] is enabled, in
//!   any order. Acting on one keeps the clock (the delivery happens
//!   "now"; under [`crate::NetModel::Lockstep`] all sends carry zero
//!   latency, so pending deliveries are never post-dated).
//! * **Timers** — every other event fires at its scheduled instant, so
//!   only the earliest one (by `(time, seq)`, the queue's own order) is
//!   enabled; firing it advances the clock.
//!
//! Under this contract the event-queue driver's pop order is just one
//! explorable path: [`World::next_queued_action`] reproduces it exactly,
//! which the `aria-model` cross-validation golden pins bit-for-bit.
//!
//! ## Canonicalization
//!
//! [`World::fingerprint`] hashes a canonical rendering of the state in
//! which pending deliveries form a **multiset** (send times and queue
//! sequence numbers erased — they are scheduler bookkeeping, not
//! protocol state) and timers keep their firing times but only their
//! *relative* order as a tie-break. Two worlds reached by different
//! action orders that agree on everything observable therefore hash
//! equal, which is what makes breadth-first dedup sound.

use crate::msg::Message;
use crate::world::{Event, World};
use aria_grid::{Cost, JobId};
use aria_overlay::NodeId;
use aria_sim::SimTime;
use std::fmt;
use std::fmt::Write as _;

/// One transition of the explored state machine.
///
/// `Deliver` and `Timer` cover everything the event-queue driver can do;
/// `Drop` and `Duplicate` are fault injections (message loss and
/// at-least-once transport) the driver never performs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Action {
    /// Deliver one pending copy of `msg` to `to` (clock unchanged).
    Deliver {
        /// The recipient.
        to: NodeId,
        /// The message, exactly as pending in the queue.
        msg: Message,
    },
    /// Remove one pending copy of `msg` without delivering it, running
    /// the same bookkeeping as a crashed-recipient loss.
    Drop {
        /// The would-be recipient.
        to: NodeId,
        /// The lost message.
        msg: Message,
    },
    /// Enqueue a second in-flight copy of a pending message
    /// (at-least-once transport). Floods dedup via their visited sets;
    /// ACCEPT/ASSIGN/ACK exercise the idempotent handlers (a duplicated
    /// ASSIGN must suppress, not double-enqueue).
    Duplicate {
        /// The recipient of the extra copy.
        to: NodeId,
        /// The duplicated message.
        msg: Message,
    },
    /// Fire the earliest pending non-delivery event, advancing the
    /// clock to its scheduled instant.
    Timer,
}

impl fmt::Display for Action {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Action::Deliver { to, msg } => write!(f, "deliver {msg} -> {to}"),
            Action::Drop { to, msg } => write!(f, "drop    {msg} -> {to}"),
            Action::Duplicate { to, msg } => write!(f, "dup     {msg} -> {to}"),
            Action::Timer => write!(f, "timer"),
        }
    }
}

/// One distinct pending delivery, with its multiset count and the
/// partial-order-reduction classification computed by the world.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PendingDelivery {
    /// The recipient.
    pub to: NodeId,
    /// The pending message.
    pub msg: Message,
    /// How many identical copies are pending (≥ 1; > 1 only after
    /// [`Action::Duplicate`]).
    pub count: u32,
    /// Whether delivering this message is *inert*: provably commutes
    /// with every other enabled action and is invisible to all checked
    /// properties, so a checker may explore it alone (see
    /// [`World::pending_deliveries`]).
    pub inert: bool,
}

impl<P: aria_probe::Probe> World<P> {
    /// Every distinct pending delivery, in canonical `(recipient,
    /// message)` order, with multiset counts.
    ///
    /// ## Inertness (partial-order reduction)
    ///
    /// A delivery is classified `inert` when its handling provably
    /// cannot interact with any other enabled or future action, so a
    /// checker that explores *only* that action from this state loses no
    /// reachable behavior (a singleton ample set). The world grants the
    /// classification only in these statically-checkable cases, both for
    /// flood messages (REQUEST/INFORM) of some flood `F`:
    ///
    /// * **Duplicate arrival** — the recipient is already in `F`'s
    ///   visited set: handling only decrements `F`'s in-flight count.
    /// * **Dead leaf hop** — the recipient is unvisited but cannot bid
    ///   on the job and the hop budget is exhausted (`hops_left == 1`),
    ///   so handling inserts the recipient into `F`'s visited set and
    ///   decrements the count, sending nothing; this is inert only if no
    ///   other pending copy of `F` can still forward (`hops_left > 1`),
    ///   since forwarding reads the visited set.
    ///
    /// Both cases additionally require at least one *other* pending
    /// message of `F` (so the slot is not recycled by this delivery:
    /// recycling order feeds the flood-id free-list, which the canonical
    /// fingerprint deliberately keeps). ACCEPT/ASSIGN deliveries are
    /// never inert — the stale-ACCEPT races are exactly what the checker
    /// exists to explore.
    pub fn pending_deliveries(&self) -> Vec<PendingDelivery> {
        let mut pending: Vec<(NodeId, Message)> = Vec::new();
        for (_, _, event) in self.events.entries() {
            if let Event::Deliver { to, msg } = *event {
                pending.push((to, msg));
            }
        }
        pending.sort_by_cached_key(|(to, msg)| (*to, format!("{msg:?}")));
        let mut out: Vec<PendingDelivery> = Vec::new();
        for (to, msg) in pending.iter().copied() {
            match out.last_mut() {
                Some(last) if last.to == to && last.msg == msg => last.count += 1,
                _ => out.push(PendingDelivery { to, msg, count: 1, inert: false }),
            }
        }
        for entry in &mut out {
            entry.inert = self.delivery_is_inert(entry.to, entry.msg, &pending);
        }
        out
    }

    /// See [`World::pending_deliveries`] for the soundness argument.
    fn delivery_is_inert(&self, to: NodeId, msg: Message, pending: &[(NodeId, Message)]) -> bool {
        let (flood, hops_left, job) = match msg {
            Message::Request { flood, hops_left, job, .. }
            | Message::Inform { flood, hops_left, job, .. } => (flood, hops_left, job),
            Message::Accept { .. } | Message::Assign { .. } | Message::Ack { .. } => return false,
        };
        let same_flood = |m: &Message| match *m {
            Message::Request { flood: f, .. } | Message::Inform { flood: f, .. } => f == flood,
            _ => false,
        };
        // The slot must survive this delivery: another copy of the flood
        // must stay pending.
        if pending.iter().filter(|(_, m)| same_flood(m)).count() < 2 {
            return false;
        }
        if self.floods.get(flood).visited.contains(to) {
            return true; // duplicate arrival: pure bookkeeping
        }
        // Dead leaf hop: recipient mute (no bid, no forward), and nobody
        // else can still read the visited set it grows. This message
        // itself has no hops budget, so "no same-flood message with
        // budget" excludes it automatically.
        let spec = self.jobs.spec(job);
        let node = &self.nodes[to.index()];
        hops_left == 1
            && node.alive
            && !Self::node_can_bid(node, &spec)
            && !pending.iter().any(|(_, m)| {
                same_flood(m)
                    && matches!(
                        *m,
                        Message::Request { hops_left: h, .. }
                        | Message::Inform { hops_left: h, .. } if h > 1
                    )
            })
    }

    /// The earliest pending non-delivery event — what [`Action::Timer`]
    /// would fire — as `(instant, description)`.
    pub fn next_timer(&self) -> Option<(SimTime, String)> {
        self.events
            .entries()
            .filter(|(_, _, e)| !matches!(e, Event::Deliver { .. }))
            .min_by_key(|&(at, seq, _)| (at, seq))
            .map(|(at, _, e)| (at, format!("{e:?}")))
    }

    /// The action the event-queue driver would take next, or `None` once
    /// the queue is drained. Stepping a cloned world with this choice in
    /// a loop reproduces [`World::run`] bit-for-bit (the cross-validation
    /// golden in `aria-model` pins this).
    pub fn next_queued_action(&self) -> Option<Action> {
        self.events.peek().map(|(_, event)| match *event {
            Event::Deliver { to, msg } => Action::Deliver { to, msg },
            _ => Action::Timer,
        })
    }

    /// Applies one enabled action to the state.
    ///
    /// # Panics
    ///
    /// Panics if the action is not enabled: no matching pending delivery
    /// for `Deliver`/`Drop`/`Duplicate`, or an empty timer pool for
    /// `Timer`.
    pub fn step(&mut self, action: Action) {
        match action {
            Action::Deliver { to, msg } => {
                let (at, _) = self
                    .events
                    .remove_where(|e| *e == Event::Deliver { to, msg })
                    .expect("Deliver action must match a pending delivery");
                // Exploration never post-dates sends past the clock
                // (Lockstep latencies are zero); the max only engages
                // when replaying the event-queue driver's own order over
                // sampled latencies, where it reproduces `pop` exactly.
                let now = self.events.now().max(at);
                self.events.advance_clock(now);
                self.processed += 1;
                self.handle(now, Event::Deliver { to, msg });
            }
            Action::Drop { to, msg } => {
                self.events
                    .remove_where(|e| *e == Event::Deliver { to, msg })
                    .expect("Drop action must match a pending delivery");
                self.lose_message(self.events.now(), to, msg);
            }
            Action::Duplicate { to, msg } => {
                assert!(
                    self.events.entries().any(|(_, _, e)| *e == Event::Deliver { to, msg }),
                    "Duplicate action must match a pending delivery"
                );
                // Flood copies carry an in-flight share each; the other
                // kinds have no per-copy bookkeeping.
                if let Message::Request { flood, .. } | Message::Inform { flood, .. } = msg {
                    self.floods.get_mut(flood).in_flight += 1;
                }
                // The copy is a transport artifact: it pays no traffic
                // (record_message charged the logical send already).
                // effects:allow(deliver-choke): model-checker action replay
                // re-enqueues an already-transmitted delivery; this is the
                // exploration driver, not handler code.
                self.events.schedule(self.events.now(), Event::Deliver { to, msg });
            }
            Action::Timer => {
                let (at, event) = self
                    .events
                    .remove_where(|e| !matches!(e, Event::Deliver { .. }))
                    .expect("Timer action requires a pending non-delivery event");
                self.events.advance_clock(at);
                self.processed += 1;
                self.handle(at, event);
            }
        }
    }

    // --- canonical state ---------------------------------------------------

    /// A canonical, deterministic rendering of the complete protocol
    /// state (see the module docs for what is erased and why). Intended
    /// for fingerprinting and counterexample diagnostics, not parsing.
    pub fn canonical_state(&self) -> String {
        let mut s = String::new();
        let w = &mut s;
        let _ = writeln!(w, "now {:?}", self.events.now());
        let _ = writeln!(w, "topology {:?}", self.topology);
        for (i, node) in self.nodes.iter().enumerate() {
            let _ = writeln!(
                w,
                "node {i} alive={} profile={:?} queue={:?}",
                node.alive, node.profile, node.queue
            );
        }
        for slot in self.jobs.iter() {
            let _ = writeln!(w, "job {:?}", slot);
        }
        for (id, slot) in self.floods.slots() {
            let _ = writeln!(w, "flood {id} {:?}", slot);
        }
        let _ = writeln!(w, "flood-free {:?}", self.floods.free_ids());

        // Timers: firing times plus *relative* order; raw sequence
        // numbers are path-dependent bookkeeping and are erased.
        let mut timers: Vec<(SimTime, u64, String)> = self
            .events
            .entries()
            .filter(|(_, _, e)| !matches!(e, Event::Deliver { .. }))
            .map(|(at, seq, e)| (at, seq, format!("{e:?}")))
            .collect();
        timers.sort_by_key(|&(at, seq, _)| (at, seq));
        for (rank, (at, _, event)) in timers.iter().enumerate() {
            let _ = writeln!(w, "timer {rank} at={at:?} {event}");
        }
        // Deliveries: a multiset, send times and sequence erased.
        for d in self.pending_deliveries() {
            let _ = writeln!(w, "pending x{} {:?} -> {}", d.count, d.msg, d.to);
        }

        let _ = writeln!(w, "metrics {:?}", self.metrics);
        let _ = writeln!(w, "abandoned {:?}", self.abandoned);
        let _ = writeln!(w, "crashed {:?}", self.crashed);
        let _ = writeln!(w, "lost {:?}", self.lost);
        let _ = writeln!(w, "recovered {}", self.recovered);
        let _ = writeln!(w, "rng {:?}", self.rng);
        s
    }

    /// FNV-1a hash of [`World::canonical_state`] — the checker's dedup
    /// key. Everything observable is included (metrics, RNG state, the
    /// flood free-list order); scratch buffers and the processed-event
    /// counter are not.
    pub fn fingerprint(&self) -> u64 {
        const OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
        const PRIME: u64 = 0x0000_0100_0000_01b3;
        let mut hash = OFFSET;
        for byte in self.canonical_state().bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(PRIME);
        }
        hash
    }

    // --- property probes ---------------------------------------------------

    /// Whether `job`'s initiator is currently collecting offers (its
    /// ACCEPT window is open).
    pub fn offer_window_open(&self, job: JobId) -> bool {
        self.jobs.slot(job).pending.is_some()
    }

    /// The best offer collected so far for `job`, while its window is
    /// open (`None` inside an open window means not even the initiator
    /// could bid).
    pub fn offer_best(&self, job: JobId) -> Option<(Cost, NodeId)> {
        self.jobs.slot(job).pending.as_ref().and_then(|p| p.best)
    }

    /// The node `job` was submitted to, once the submission event fired.
    pub fn initiator_of(&self, job: JobId) -> Option<NodeId> {
        self.jobs.slot(job).initiator
    }

    /// The node currently responsible for executing `job`, if assigned.
    pub fn assignee_of(&self, job: JobId) -> Option<NodeId> {
        self.jobs.slot(job).assignee
    }

    /// The node whose queue currently holds `job` (waiting or running).
    pub fn holder_of(&self, job: JobId) -> Option<NodeId> {
        self.nodes.iter().enumerate().find_map(|(i, state)| {
            let held = state.queue.is_waiting(job)
                || state.queue.running().is_some_and(|r| r.spec.id == job);
            (state.alive && held).then(|| NodeId::new(i as u32))
        })
    }

    /// Whether `job` has a completed record.
    pub fn is_completed(&self, job: JobId) -> bool {
        self.metrics.records().get(&job).is_some_and(|r| r.is_completed())
    }

    /// How many times `job` was completed (a duplicated execution would
    /// trip the collector's own audit first, but the checker asserts it
    /// independently).
    pub fn completion_count(&self) -> u64 {
        self.metrics.completed_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PolicyMix, WorldConfig};
    use crate::net::NetModel;
    use aria_grid::{JobId, JobSpec, JobRequirements, Policy};
    use aria_sim::SimDuration;
    use aria_workload::ArtModel;

    /// A tiny deterministic lockstep world for exploration tests.
    fn lockstep_world(nodes: usize, seed: u64) -> World {
        let mut config = WorldConfig::small_test(nodes);
        config.net = NetModel::Lockstep;
        config.art = ArtModel::Exact;
        config.aria.rescheduling = false;
        config.policies = PolicyMix::Uniform(Policy::Fcfs);
        config.horizon = aria_sim::SimTime::from_mins(30);
        config.sample_period = SimDuration::from_mins(30);
        World::new(config, seed)
    }

    /// A job every node in `world` can run.
    fn universal_job(world: &World, id: u64) -> JobSpec {
        let p = world.profile_of(NodeId::new(0));
        let req = JobRequirements::new(p.arch, p.os, 1, 1);
        JobSpec::batch(JobId::new(id), req, SimDuration::from_mins(5))
    }

    #[test]
    fn queued_action_replay_matches_run_bit_for_bit() {
        let build = |seed| {
            let mut world = lockstep_world(4, seed);
            let job = universal_job(&world, 0);
            world.submit_job(aria_sim::SimTime::from_mins(1), job);
            world
        };
        for seed in [3, 4] {
            let mut driver = build(seed);
            let mut stepper = build(seed);
            driver.run();
            while let Some(action) = stepper.next_queued_action() {
                stepper.step(action);
            }
            assert_eq!(driver.fingerprint(), stepper.fingerprint(), "seed {seed}");
            assert_eq!(driver.canonical_state(), stepper.canonical_state());
        }
    }

    #[test]
    fn sampled_queued_action_replay_matches_run_too() {
        // The step contract also reproduces `pop` over *sampled*
        // latencies (clock advances via the max with the entry time).
        let build = || {
            let mut world = World::new(WorldConfig::small_test(10), 5);
            let job = universal_job(&world, 0);
            world.submit_job(aria_sim::SimTime::from_mins(1), job);
            world
        };
        let mut driver = build();
        let mut stepper = build();
        driver.run();
        while let Some(action) = stepper.next_queued_action() {
            stepper.step(action);
        }
        assert_eq!(driver.canonical_state(), stepper.canonical_state());
    }

    #[test]
    fn fingerprint_ignores_delivery_send_order() {
        // Submit two jobs at the same instant: their REQUEST seeds are
        // interchangeable in-flight messages. Delivering disjoint-flood
        // messages in either order must converge to the same state.
        let mut world = lockstep_world(5, 7);
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 1));
        // Fire timers until both submissions seeded their floods.
        while world.pending_deliveries().len() < 2 {
            world.step(Action::Timer);
        }
        let deliveries = world.pending_deliveries();
        let (a, b) = (deliveries[0], deliveries[deliveries.len() - 1]);
        assert_ne!(a, b);
        let mut ab = world.clone();
        ab.step(Action::Deliver { to: a.to, msg: a.msg });
        ab.step(Action::Deliver { to: b.to, msg: b.msg });
        let mut ba = world.clone();
        ba.step(Action::Deliver { to: b.to, msg: b.msg });
        ba.step(Action::Deliver { to: a.to, msg: a.msg });
        // Note: these two messages belong to two *different* floods, so
        // they commute exactly (same-flood arrivals need not).
        assert_eq!(ab.canonical_state(), ba.canonical_state());
        assert_eq!(ab.fingerprint(), ba.fingerprint());
    }

    #[test]
    fn drop_runs_the_loss_bookkeeping() {
        let mut world = lockstep_world(4, 9);
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
        while world.pending_deliveries().is_empty() {
            world.step(Action::Timer);
        }
        // Drop every pending request copy: the flood drains, its slot is
        // recycled, and the invariants still hold.
        while let Some(d) = world.pending_deliveries().first().copied() {
            world.step(Action::Drop { to: d.to, msg: d.msg });
        }
        world.try_check_invariants().expect("invariants after drops");
        assert_eq!(world.floods.free_ids().len(), 1, "the request flood slot is recycled");
    }

    #[test]
    fn duplicate_adds_a_pending_copy_and_keeps_invariants() {
        let mut world = lockstep_world(4, 11);
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
        while world.pending_deliveries().is_empty() {
            world.step(Action::Timer);
        }
        let d = world.pending_deliveries()[0];
        world.step(Action::Duplicate { to: d.to, msg: d.msg });
        let again = world.pending_deliveries();
        let copy = again.iter().find(|p| p.to == d.to && p.msg == d.msg).unwrap();
        assert_eq!(copy.count, d.count + 1);
        world.try_check_invariants().expect("invariants after duplicate");
        // The duplicate is inert bookkeeping once its target is visited;
        // delivering both copies converges.
        world.step(Action::Deliver { to: d.to, msg: d.msg });
        world.step(Action::Deliver { to: d.to, msg: d.msg });
        world.try_check_invariants().expect("invariants after double delivery");
    }

    #[test]
    fn duplicate_arrivals_are_classified_inert() {
        let mut world = lockstep_world(4, 13);
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
        while world.pending_deliveries().is_empty() {
            world.step(Action::Timer);
        }
        let d = world.pending_deliveries()[0];
        assert!(!d.inert, "a first arrival at an unvisited node is not inert");
        world.step(Action::Duplicate { to: d.to, msg: d.msg });
        world.step(Action::Deliver { to: d.to, msg: d.msg });
        // The remaining copy now targets a visited node. It is inert iff
        // another copy of the flood is still pending to keep the slot
        // alive — seed fanout > 1 guarantees that here.
        let rest = world.pending_deliveries();
        let dup = rest.iter().find(|p| p.to == d.to && p.msg == d.msg);
        if let Some(dup) = dup {
            let same_flood_pending = rest.iter().map(|p| p.count).sum::<u32>() >= 2;
            assert_eq!(dup.inert, same_flood_pending);
        }
    }

    #[test]
    fn duplicated_assign_is_suppressed_not_double_enqueued() {
        // An at-least-once transport may deliver the same ASSIGN twice;
        // the second copy must not enqueue the job a second time (the
        // queue validator would catch the duplicate) nor complete it
        // twice.
        let mut exercised = false;
        'seeds: for seed in 0..30u64 {
            let mut world = lockstep_world(4, seed);
            world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
            loop {
                let assign = world
                    .pending_deliveries()
                    .iter()
                    .find(|d| matches!(d.msg, Message::Assign { .. }))
                    .copied();
                if let Some(d) = assign {
                    world.step(Action::Duplicate { to: d.to, msg: d.msg });
                    world.step(Action::Deliver { to: d.to, msg: d.msg });
                    assert_eq!(world.holder_of(d.msg.job_id()), Some(d.to));
                    world.step(Action::Deliver { to: d.to, msg: d.msg });
                    world.try_check_invariants().expect("invariants after duplicate ASSIGN");
                    while let Some(action) = world.next_queued_action() {
                        world.step(action);
                    }
                    assert_eq!(world.completion_count(), 1);
                    exercised = true;
                    break 'seeds;
                }
                match world.next_queued_action() {
                    Some(action) => world.step(action),
                    // The winner was the initiator (local enqueue, no
                    // ASSIGN on the wire): try the next seed.
                    None => continue 'seeds,
                }
            }
        }
        assert!(exercised, "no seed produced a remote ASSIGN");
    }

    #[test]
    fn invariant_violations_are_reported_not_panicked() {
        let mut world = lockstep_world(4, 15);
        world.submit_job(aria_sim::SimTime::from_mins(1), universal_job(&world, 0));
        world.run();
        assert_eq!(world.try_check_invariants(), Ok(()));
        // Corrupt the books: claim in-flight traffic on a live flood that
        // has none pending.
        let flood = world.floods.alloc(NodeId::new(0), 4);
        world.floods.get_mut(flood).in_flight = 3;
        let err = world.try_check_invariants().unwrap_err();
        assert!(err.starts_with("invariant:"), "unexpected message: {err}");
    }
}
