//! Dense, allocation-free protocol state tables.
//!
//! The per-run hot path (one [`crate::World`] event per flood hop) used to
//! chase `HashMap`s keyed by job and flood ids and to allocate a fresh
//! `HashSet` visited-set per flood. Job and flood ids are dense by
//! construction — the workload generator numbers jobs from zero and the
//! world numbers floods as it opens them — so all of that state lives in
//! plain `Vec`s here:
//!
//! * [`JobTable`] — one slot per job id holding the interned [`JobSpec`]
//!   plus the initiator/assignee/pending-request tracking that used to be
//!   three separate maps. Messages and events carry bare [`JobId`]s and
//!   look the payload up on delivery.
//! * [`FloodTable`] — one slot per *active* flood, recycled through a
//!   free-list the moment a flood's last in-flight message lands, so a
//!   whole run reuses a handful of slots (and their visited sets).
//! * [`VisitedSet`] (in [`crate::visited`]) — a tiered set over node
//!   indices replacing the per-flood `HashSet<NodeId>`: an inline sorted
//!   small-set for the common few-dozen-hop flood, spilling to a bitset
//!   past a threshold so per-live-flood memory is O(reach), not O(N).

use crate::msg::FloodId;
use crate::visited::VisitedSet;
use aria_grid::{Cost, JobId, JobSpec};
use aria_overlay::NodeId;

/// Book-keeping for one active flood: duplicate suppression plus the
/// in-flight message count that decides when the slot can be recycled.
#[derive(Debug, Default, Clone)]
pub(crate) struct FloodSlot {
    /// Nodes this flood has already reached (selective flooding, \[28\]).
    pub visited: VisitedSet,
    /// Messages of this flood currently in flight.
    pub in_flight: u32,
}

/// The active floods, indexed by [`FloodId`] and recycled via free-list.
///
/// A flood id stays valid exactly as long as messages of that flood are
/// in flight; once the count drains to zero the world releases the slot
/// and the id may be reissued. Callers therefore never hold a `FloodId`
/// across a release.
#[derive(Debug, Default, Clone)]
pub(crate) struct FloodTable {
    slots: Vec<FloodSlot>,
    free: Vec<u32>,
}

impl FloodTable {
    /// Opens a new flood originating at `origin`, reusing a drained slot
    /// when one is available.
    pub fn alloc(&mut self, origin: NodeId, nodes: usize) -> FloodId {
        let id = match self.free.pop() {
            Some(id) => {
                let slot = &mut self.slots[id as usize];
                // Re-arm for the *current* world: a recycled slot must not
                // keep its pre-join capacity and re-grow word by word.
                slot.visited.reset(nodes);
                debug_assert_eq!(slot.in_flight, 0, "recycled flood still in flight");
                id
            }
            None => {
                let id = u32::try_from(self.slots.len()).expect("fewer than 2^32 live floods");
                self.slots.push(FloodSlot {
                    visited: VisitedSet::with_capacity(nodes),
                    in_flight: 0,
                });
                id
            }
        };
        self.slots[id as usize].visited.insert(origin);
        FloodId(id)
    }

    /// The slot of a live flood.
    pub fn get(&self, id: FloodId) -> &FloodSlot {
        &self.slots[id.0 as usize]
    }

    /// The slot of a live flood, mutably.
    pub fn get_mut(&mut self, id: FloodId) -> &mut FloodSlot {
        &mut self.slots[id.0 as usize]
    }

    /// Returns a drained flood's slot to the free-list.
    pub fn release(&mut self, id: FloodId) {
        debug_assert_eq!(self.slots[id.0 as usize].in_flight, 0, "release of in-flight flood");
        debug_assert!(!self.free.contains(&id.0), "double release of {id}");
        self.free.push(id.0);
    }

    /// How many slots were ever allocated (diagnostics only).
    #[cfg(test)]
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Diagnostics for the scale bench: `(slots ever allocated, slots
    /// whose visited set ever spilled to the bitset tier)`. The first
    /// bounds live-flood book-keeping; the second bounds its memory.
    pub fn stats(&self) -> (usize, usize) {
        let spilled = self.slots.iter().filter(|s| s.visited.is_spilled()).count();
        (self.slots.len(), spilled)
    }

    /// Iterates over every slot ever allocated, live or recycled, with
    /// its raw id (inspection hook for `World::check_invariants`).
    pub fn slots(&self) -> impl Iterator<Item = (u32, &FloodSlot)> + '_ {
        self.slots.iter().enumerate().map(|(i, slot)| (i as u32, slot))
    }

    /// The raw ids currently on the free-list (recycled slots).
    pub fn free_ids(&self) -> &[u32] {
        &self.free
    }
}

/// An initiator's open offer collection for one job (§III-B).
#[derive(Debug, Clone)]
pub(crate) struct PendingRequest {
    /// REQUEST round counter (retries re-flood with a fresh round).
    pub round: u32,
    /// Best offer so far.
    pub best: Option<(Cost, NodeId)>,
}

/// An unacknowledged ASSIGN with its retransmit state. Only armed while
/// the world's fault plan is active — on a reliable transport ASSIGNs
/// cannot be lost and no slot ever carries one.
#[derive(Debug, Clone, Copy)]
pub(crate) struct AssignInFlight {
    /// The assignee the ASSIGN was sent to.
    pub to: NodeId,
    /// The assigner awaiting the ACK (initiator, or current holder on a
    /// §III-D steal) — the node the assignee ACKs back to.
    pub by: NodeId,
    /// Retry counter (0 = original send, bumped per retransmit).
    pub attempt: u32,
    /// Arm generation: stale retransmit timers from a superseded arm
    /// carry an older epoch and are ignored.
    pub epoch: u32,
    /// Whether the ASSIGN was a reschedule steal rather than the initial
    /// delegation.
    pub reschedule: bool,
}

/// Everything the world tracks per job, in one dense slot.
#[derive(Debug, Clone)]
pub(crate) struct JobSlot {
    /// The job's full description, interned at submission; messages and
    /// events carry only the [`JobId`].
    pub spec: JobSpec,
    /// The node the job was submitted to (set when the submission event
    /// fires; carried in ASSIGN messages and driving the §III-D failsafe).
    pub initiator: Option<NodeId>,
    /// The node currently holding the job, if assigned.
    pub assignee: Option<NodeId>,
    /// The open offer collection, while the initiator is collecting.
    pub pending: Option<PendingRequest>,
    /// The in-flight unacknowledged ASSIGN, while the fault-layer
    /// retransmit timer is armed (always `None` on a reliable transport).
    pub assign: Option<AssignInFlight>,
    /// Monotone arm counter backing [`AssignInFlight::epoch`].
    pub assign_epoch: u32,
    /// Offers recorded during the job's last REQUEST round, for the
    /// next-best fallback when ASSIGN retries exhaust. Only populated
    /// while the fault plan is active, so the reliable-transport hot
    /// path never allocates here.
    pub offers: Vec<(Cost, NodeId)>,
}

/// Per-job protocol state indexed by raw job id.
///
/// Job ids are dense in the simulator (the generator numbers them from
/// zero), so the table is a `Vec` with one slot per id; sparse hand-picked
/// ids in tests simply leave gaps.
#[derive(Debug, Default, Clone)]
pub(crate) struct JobTable {
    slots: Vec<Option<JobSlot>>,
}

impl JobTable {
    /// Interns a job's spec at submission time.
    pub fn register(&mut self, spec: JobSpec) {
        let index = spec.id.raw() as usize;
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        self.slots[index] = Some(JobSlot {
            spec,
            initiator: None,
            assignee: None,
            pending: None,
            assign: None,
            assign_epoch: 0,
            offers: Vec::new(),
        });
    }

    /// The slot of a registered job.
    pub fn slot(&self, id: JobId) -> &JobSlot {
        self.slots[id.raw() as usize].as_ref().expect("job registered at submission")
    }

    /// The slot of a registered job, mutably.
    pub fn slot_mut(&mut self, id: JobId) -> &mut JobSlot {
        self.slots[id.raw() as usize].as_mut().expect("job registered at submission")
    }

    /// The job's interned spec.
    pub fn spec(&self, id: JobId) -> JobSpec {
        self.slot(id).spec
    }

    /// Removes and returns the job's open offer collection, if any.
    pub fn take_pending(&mut self, id: JobId) -> Option<PendingRequest> {
        self.slot_mut(id).pending.take()
    }

    /// Iterates over every registered job's slot (inspection hook for
    /// `World::check_invariants`; gaps from sparse ids are skipped).
    pub fn iter(&self) -> impl Iterator<Item = &JobSlot> + '_ {
        self.slots.iter().flatten()
    }

    /// Drops every open offer collection whose initiator is `node`,
    /// returning the affected jobs (crash handling; rare).
    pub fn drop_pending_of(&mut self, node: NodeId) -> Vec<JobId> {
        let mut dropped = Vec::new();
        for slot in self.slots.iter_mut().flatten() {
            if slot.pending.is_some() && slot.initiator == Some(node) {
                slot.pending = None;
                dropped.push(slot.spec.id);
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::{Architecture, JobRequirements, OperatingSystem};
    use aria_sim::SimDuration;

    fn spec(id: u64) -> JobSpec {
        let req = JobRequirements::new(Architecture::Amd64, OperatingSystem::Linux, 1, 1);
        JobSpec::batch(JobId::new(id), req, SimDuration::from_hours(1))
    }

    #[test]
    fn flood_slots_are_recycled_through_the_free_list() {
        let mut floods = FloodTable::default();
        let a = floods.alloc(NodeId::new(0), 50);
        let b = floods.alloc(NodeId::new(1), 50);
        assert_ne!(a, b);
        assert_eq!(floods.capacity(), 2);
        floods.release(a);
        // The next flood reuses a's slot with a cleared visited set.
        let c = floods.alloc(NodeId::new(2), 50);
        assert_eq!(c, a);
        assert_eq!(floods.capacity(), 2);
        assert!(!floods.get(c).visited.contains(NodeId::new(0)));
        assert!(floods.get(c).visited.contains(NodeId::new(2)));
    }

    #[test]
    fn recycled_flood_slots_are_resized_to_the_current_world() {
        // Regression: a slot whose visited set spilled at a 64-node world
        // used to keep that capacity across recycling, re-growing word by
        // word after overlay joins. `alloc` must re-arm it to the current
        // node count up front.
        let mut floods = FloodTable::default();
        let id = floods.alloc(NodeId::new(0), 64);
        for i in 0..crate::visited::SMALL_CAP as u32 + 1 {
            floods.get_mut(id).visited.insert(NodeId::new(i));
        }
        assert_eq!(floods.get(id).visited.spill_capacity(), 64);
        floods.release(id);
        // The world grew to 256 nodes before the slot is reused.
        let recycled = floods.alloc(NodeId::new(1), 256);
        assert_eq!(recycled, id);
        assert_eq!(
            floods.get(recycled).visited.spill_capacity(),
            256,
            "recycled slot must be sized to the current world at alloc time"
        );
        assert!(!floods.get(recycled).visited.contains(NodeId::new(0)));
        assert!(floods.get(recycled).visited.contains(NodeId::new(1)));
    }

    #[test]
    fn free_ids_and_slots_expose_the_free_list_state() {
        let mut floods = FloodTable::default();
        let a = floods.alloc(NodeId::new(0), 10);
        let b = floods.alloc(NodeId::new(1), 10);
        assert!(floods.free_ids().is_empty());
        floods.release(a);
        assert_eq!(floods.free_ids(), [a.0]);
        // The live slot is still enumerable next to the freed one.
        assert_eq!(floods.slots().count(), 2);
        let (live, slot) = floods.slots().find(|&(id, _)| id == b.0).unwrap();
        assert_eq!(live, b.0);
        assert!(slot.visited.contains(NodeId::new(1)));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "double release")]
    fn releasing_a_flood_twice_panics_in_debug() {
        let mut floods = FloodTable::default();
        let id = floods.alloc(NodeId::new(0), 10);
        floods.release(id);
        floods.release(id);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "release of in-flight flood")]
    fn releasing_an_in_flight_flood_panics_in_debug() {
        let mut floods = FloodTable::default();
        let id = floods.alloc(NodeId::new(0), 10);
        floods.get_mut(id).in_flight = 3;
        floods.release(id);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "recycled flood still in flight")]
    fn recycling_a_corrupted_slot_panics_in_debug() {
        let mut floods = FloodTable::default();
        let id = floods.alloc(NodeId::new(0), 10);
        floods.release(id);
        // Corrupt the freed slot behind the free-list's back: the next
        // alloc must refuse to hand out a slot that claims live traffic.
        floods.get_mut(id).in_flight = 1;
        floods.alloc(NodeId::new(1), 10);
    }

    #[test]
    fn flood_alloc_marks_origin_visited() {
        let mut floods = FloodTable::default();
        let id = floods.alloc(NodeId::new(9), 20);
        assert!(floods.get(id).visited.contains(NodeId::new(9)));
        assert_eq!(floods.get(id).in_flight, 0);
    }

    #[test]
    fn job_table_tracks_slots_by_raw_id() {
        let mut jobs = JobTable::default();
        jobs.register(spec(0));
        jobs.register(spec(5)); // sparse ids leave gaps
        assert_eq!(jobs.spec(JobId::new(5)).id, JobId::new(5));
        jobs.slot_mut(JobId::new(5)).initiator = Some(NodeId::new(2));
        jobs.slot_mut(JobId::new(5)).pending =
            Some(PendingRequest { round: 0, best: None });
        assert!(jobs.take_pending(JobId::new(5)).is_some());
        assert!(jobs.take_pending(JobId::new(5)).is_none(), "pending is taken once");
    }

    #[test]
    fn drop_pending_of_clears_only_the_crashed_initiator() {
        let mut jobs = JobTable::default();
        for id in 0..4 {
            jobs.register(spec(id));
            let slot = jobs.slot_mut(JobId::new(id));
            slot.initiator = Some(NodeId::new((id % 2) as u32));
            slot.pending = Some(PendingRequest { round: 0, best: None });
        }
        let dropped = jobs.drop_pending_of(NodeId::new(0));
        assert_eq!(dropped, [JobId::new(0), JobId::new(2)]);
        assert!(jobs.slot(JobId::new(1)).pending.is_some());
        assert!(jobs.slot(JobId::new(3)).pending.is_some());
    }
}
