//! Turning SWF trace rows into ARiA job submissions.

use crate::swf::SwfTrace;
use aria_grid::{JobId, JobRequirements, JobSpec};
use aria_sim::{SimDuration, SimRng, SimTime};
use aria_workload::{CapacityDistribution, CategoricalField};

/// How an SWF trace is mapped onto ARiA submissions.
///
/// SWF rows carry quantities (times, memory) but not resource *kinds*,
/// so architecture and operating system are sampled from the paper's
/// TOP500 distributions; disk space, absent from SWF entirely, is drawn
/// from the paper's capacity levels.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ReplayConfig {
    /// Multiply all trace timestamps and estimates (e.g. `0.5` compresses
    /// a long trace into half the simulated time).
    pub time_scale: f64,
    /// Shift every submission by this offset (the paper starts
    /// submissions 20 minutes into the run).
    pub start_offset: SimTime,
    /// Skip rows whose original status is failed/cancelled.
    pub completed_only: bool,
    /// Take at most this many rows (`None` = all).
    pub max_jobs: Option<usize>,
    /// Clamp the replayed running-time estimate to this window, mirroring
    /// the paper's ERT bounds.
    pub min_ert: SimDuration,
    /// Upper running-time clamp.
    pub max_ert: SimDuration,
}

impl Default for ReplayConfig {
    /// Paper-aligned defaults: no scaling, the paper's 20-minute start
    /// offset, completed jobs only. The ERT clamp is deliberately *wide*
    /// (1 minute to 1 week) rather than the paper's `[1h, 4h]`, so that
    /// real traces keep their heavy tails; tighten it per-experiment when
    /// comparing against the synthetic workload.
    fn default() -> Self {
        ReplayConfig {
            time_scale: 1.0,
            start_offset: SimTime::from_mins(20),
            completed_only: true,
            max_jobs: None,
            min_ert: SimDuration::from_mins(1),
            max_ert: SimDuration::from_hours(24 * 7),
        }
    }
}

impl SwfTrace {
    /// Converts trace rows into `(submission instant, job)` pairs ready
    /// for `World::submit_job`.
    ///
    /// Rows without any usable time estimate are skipped. Requested
    /// memory (KB per processor) is rounded up to whole GB; missing
    /// memory and all disk requirements are sampled from the paper's
    /// distributions, as are architecture and operating system.
    pub fn replay(&self, config: &ReplayConfig, rng: &mut SimRng) -> Vec<(SimTime, JobSpec)> {
        let mut out = Vec::new();
        for job in &self.jobs {
            if config.completed_only && !job.completed() {
                continue;
            }
            if config.max_jobs.is_some_and(|max| out.len() >= max) {
                break;
            }
            let Some(estimate) = job.time_estimate() else { continue };
            let ert = SimDuration::from_secs_f64(estimate * config.time_scale)
                .max(config.min_ert)
                .min(config.max_ert);
            let submit = config.start_offset
                + SimDuration::from_secs_f64(job.submit_time.max(0.0) * config.time_scale);
            let memory_gb = if job.requested_memory_kb > 0 {
                let gb = (job.requested_memory_kb as u64).div_ceil(1024 * 1024);
                gb.min(u16::MAX as u64) as u16
            } else {
                CapacityDistribution::sample(rng)
            };
            let requirements = JobRequirements::new(
                CategoricalField::architecture(rng),
                CategoricalField::operating_system(rng),
                memory_gb,
                CapacityDistribution::sample(rng),
            );
            let id = JobId::new(out.len() as u64);
            out.push((submit, JobSpec::batch(id, requirements, ert)));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::swf::SwfTrace;

    fn sample_trace() -> SwfTrace {
        "\
; Version: 2.2
1 0 5 3600 1 -1 -1 1 7200 2097152 1 3 1 1 1 1 -1 -1
2 100 -1 1800 1 -1 -1 1 3600 4194304 0 4 1 2 1 1 -1 -1
3 250 2 900 1 -1 -1 1 -1 -1 1 5 1 3 1 1 -1 -1
4 400 2 -1 1 -1 -1 1 -1 -1 1 5 1 3 1 1 -1 -1
"
        .parse()
        .unwrap()
    }

    #[test]
    fn replays_completed_jobs_with_trace_quantities() {
        let mut rng = SimRng::seed_from(1);
        let submissions = sample_trace().replay(&ReplayConfig::default(), &mut rng);
        // Job 2 failed, job 4 has no time estimate: 2 rows survive.
        assert_eq!(submissions.len(), 2);
        let (t0, j0) = submissions[0];
        assert_eq!(t0, SimTime::from_mins(20));
        assert_eq!(j0.ert, SimDuration::from_secs(7200));
        assert_eq!(j0.requirements.min_memory_gb, 2);
        let (t1, j1) = submissions[1];
        assert_eq!(t1, SimTime::from_mins(20) + SimDuration::from_secs(250));
        // Row 3 has no requested memory: sampled from the paper's levels.
        assert!([1, 2, 4, 8, 16].contains(&j1.requirements.min_memory_gb));
    }

    #[test]
    fn completed_only_can_be_disabled() {
        let mut rng = SimRng::seed_from(2);
        let config = ReplayConfig { completed_only: false, ..ReplayConfig::default() };
        let submissions = sample_trace().replay(&config, &mut rng);
        assert_eq!(submissions.len(), 3); // job 4 still lacks an estimate
    }

    #[test]
    fn time_scale_compresses_the_trace() {
        let mut rng = SimRng::seed_from(3);
        let config = ReplayConfig {
            time_scale: 0.5,
            start_offset: SimTime::ZERO,
            ..ReplayConfig::default()
        };
        let submissions = sample_trace().replay(&config, &mut rng);
        assert_eq!(submissions[1].0, SimTime::from_secs(125));
        assert_eq!(submissions[0].1.ert, SimDuration::from_secs(3600));
    }

    #[test]
    fn max_jobs_truncates() {
        let mut rng = SimRng::seed_from(4);
        let config = ReplayConfig { max_jobs: Some(1), ..ReplayConfig::default() };
        assert_eq!(sample_trace().replay(&config, &mut rng).len(), 1);
    }

    #[test]
    fn ert_clamps_apply() {
        let mut rng = SimRng::seed_from(5);
        let config = ReplayConfig {
            min_ert: SimDuration::from_hours(2),
            max_ert: SimDuration::from_hours(2),
            ..ReplayConfig::default()
        };
        for (_, job) in sample_trace().replay(&config, &mut rng) {
            assert_eq!(job.ert, SimDuration::from_hours(2));
        }
    }

    #[test]
    fn ids_are_dense_and_unique() {
        let mut rng = SimRng::seed_from(6);
        let trace = SwfTrace::synthesize(50, &mut rng);
        let submissions = trace.replay(&ReplayConfig::default(), &mut rng);
        for (i, (_, job)) in submissions.iter().enumerate() {
            assert_eq!(job.id, JobId::new(i as u64));
        }
    }

    #[test]
    fn submissions_are_time_ordered_for_sorted_traces() {
        let mut rng = SimRng::seed_from(7);
        let trace = SwfTrace::synthesize(100, &mut rng);
        let submissions = trace.replay(&ReplayConfig::default(), &mut rng);
        for pair in submissions.windows(2) {
            assert!(pair[0].0 <= pair[1].0);
        }
    }
}
