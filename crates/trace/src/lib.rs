//! # aria-trace — Standard Workload Format traces for ARiA
//!
//! The paper closes by recognizing "the need for full-scale evaluation
//! with real grid workload traces" (§VI). This crate supplies that
//! pipeline: a reader and writer for the **Standard Workload Format**
//! (SWF — the de-facto format of the Parallel/Grid Workloads Archives),
//! and a replay layer that turns trace rows into ARiA job submissions.
//!
//! Real archive traces are not redistributable with this repository, so
//! [`SwfTrace::synthesize`] generates synthetic traces with the paper's
//! workload distributions in valid SWF — byte-compatible with what a
//! downloaded archive trace would provide, and exercising exactly the
//! same parse/replay code path.
//!
//! SWF rows do not describe resource *kinds* (architecture, OS), only
//! quantities, so replay samples the missing requirement fields from the
//! paper's TOP500 distributions (see [`ReplayConfig`]).
//!
//! ## Example
//!
//! ```
//! use aria_trace::{ReplayConfig, SwfTrace};
//! use aria_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let trace = SwfTrace::synthesize(100, &mut rng);
//! let text = trace.to_string();           // valid SWF
//! let reparsed: SwfTrace = text.parse()?; // round-trips
//!
//! let submissions = reparsed.replay(&ReplayConfig::default(), &mut rng);
//! assert_eq!(submissions.len(), 100);
//! # Ok::<(), aria_trace::SwfError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod replay;
pub mod swf;

pub use replay::ReplayConfig;
pub use swf::{SwfError, SwfJob, SwfTrace};
