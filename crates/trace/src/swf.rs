//! The Standard Workload Format: parsing, validation and serialization.
//!
//! An SWF file is a sequence of `;`-prefixed header comments followed by
//! one line per job with 18 whitespace-separated numeric fields (missing
//! values are `-1`). See the Parallel Workloads Archive definition.

use aria_sim::SimRng;
use aria_workload::ClampedNormal;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One job row of an SWF trace (the 18 standard fields).
///
/// Times are in seconds, memory in kilobytes; `-1` encodes "unknown"
/// exactly as in the archive format.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwfJob {
    /// 1 — job number (1-based, counting from the start of the trace).
    pub job_number: i64,
    /// 2 — submit time, seconds since trace start.
    pub submit_time: f64,
    /// 3 — wait time in the original system, seconds.
    pub wait_time: f64,
    /// 4 — actual run time, seconds.
    pub run_time: f64,
    /// 5 — number of allocated processors.
    pub allocated_processors: i64,
    /// 6 — average CPU time used per processor, seconds.
    pub average_cpu_time: f64,
    /// 7 — used memory per processor, KB.
    pub used_memory_kb: i64,
    /// 8 — requested number of processors.
    pub requested_processors: i64,
    /// 9 — requested (estimated) time, seconds.
    pub requested_time: f64,
    /// 10 — requested memory per processor, KB.
    pub requested_memory_kb: i64,
    /// 11 — completion status (1 = completed, 0 = failed, 5 = cancelled).
    pub status: i64,
    /// 12 — user id.
    pub user_id: i64,
    /// 13 — group id.
    pub group_id: i64,
    /// 14 — executable (application) number.
    pub executable: i64,
    /// 15 — queue number.
    pub queue: i64,
    /// 16 — partition number.
    pub partition: i64,
    /// 17 — preceding job number (dependency).
    pub preceding_job: i64,
    /// 18 — think time from preceding job, seconds.
    pub think_time: f64,
}

impl SwfJob {
    /// Whether the original system completed the job successfully.
    pub fn completed(&self) -> bool {
        self.status == 1 || self.status < 0
    }

    /// The best available running-time estimate: the user's requested
    /// time if known, otherwise the actual run time.
    pub fn time_estimate(&self) -> Option<f64> {
        if self.requested_time > 0.0 {
            Some(self.requested_time)
        } else if self.run_time > 0.0 {
            Some(self.run_time)
        } else {
            None
        }
    }
}

/// A parsed SWF trace: header comment lines (without the leading `;`)
/// and job rows in file order.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct SwfTrace {
    /// Header comment lines, `;` stripped, in file order.
    pub header: Vec<String>,
    /// Job rows in file order.
    pub jobs: Vec<SwfJob>,
}

/// Error raised when an SWF file cannot be parsed.
#[derive(Debug, Clone, PartialEq)]
pub struct SwfError {
    message: String,
    /// 1-based line number of the offending line.
    pub line: usize,
}

impl SwfError {
    fn new(message: impl Into<String>, line: usize) -> Self {
        SwfError { message: message.into(), line }
    }
}

impl fmt::Display for SwfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "swf error on line {}: {}", self.line, self.message)
    }
}

impl Error for SwfError {}

impl FromStr for SwfTrace {
    type Err = SwfError;

    fn from_str(text: &str) -> Result<Self, SwfError> {
        let mut trace = SwfTrace::default();
        for (index, raw) in text.lines().enumerate() {
            let line_no = index + 1;
            let line = raw.trim();
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix(';') {
                trace.header.push(comment.trim().to_string());
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            if fields.len() != 18 {
                return Err(SwfError::new(
                    format!("expected 18 fields, found {}", fields.len()),
                    line_no,
                ));
            }
            let int = |i: usize| -> Result<i64, SwfError> {
                fields[i]
                    .parse::<f64>()
                    .map(|v| v as i64)
                    .map_err(|_| SwfError::new(format!("bad integer field {}", i + 1), line_no))
            };
            let num = |i: usize| -> Result<f64, SwfError> {
                fields[i]
                    .parse::<f64>()
                    .map_err(|_| SwfError::new(format!("bad numeric field {}", i + 1), line_no))
            };
            trace.jobs.push(SwfJob {
                job_number: int(0)?,
                submit_time: num(1)?,
                wait_time: num(2)?,
                run_time: num(3)?,
                allocated_processors: int(4)?,
                average_cpu_time: num(5)?,
                used_memory_kb: int(6)?,
                requested_processors: int(7)?,
                requested_time: num(8)?,
                requested_memory_kb: int(9)?,
                status: int(10)?,
                user_id: int(11)?,
                group_id: int(12)?,
                executable: int(13)?,
                queue: int(14)?,
                partition: int(15)?,
                preceding_job: int(16)?,
                think_time: num(17)?,
            });
        }
        Ok(trace)
    }
}

impl fmt::Display for SwfTrace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for line in &self.header {
            writeln!(f, "; {line}")?;
        }
        for j in &self.jobs {
            writeln!(
                f,
                "{} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {} {}",
                j.job_number,
                j.submit_time,
                j.wait_time,
                j.run_time,
                j.allocated_processors,
                j.average_cpu_time,
                j.used_memory_kb,
                j.requested_processors,
                j.requested_time,
                j.requested_memory_kb,
                j.status,
                j.user_id,
                j.group_id,
                j.executable,
                j.queue,
                j.partition,
                j.preceding_job,
                j.think_time,
            )?;
        }
        Ok(())
    }
}

impl SwfTrace {
    /// Number of job rows.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the trace holds no job rows.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Generates a synthetic SWF trace with the paper's workload
    /// distributions: Poisson-like arrivals around the baseline rate
    /// (one job every 10 s), clamped-normal requested times (`N(2h30m,
    /// 1h15m)` in `[1h, 4h]`), ±10 % actual run times, and memory
    /// requests drawn from the paper's capacity levels.
    ///
    /// A stand-in for proprietary archive traces: the file exercises the
    /// identical parse/replay path.
    pub fn synthesize(jobs: usize, rng: &mut SimRng) -> SwfTrace {
        let ert = ClampedNormal::paper_ert();
        let mut trace = SwfTrace {
            header: vec![
                "Version: 2.2".into(),
                "Computer: ARiA synthetic grid".into(),
                "Note: synthesized with the ICDCS'10 evaluation distributions".into(),
                "MaxJobs: ".to_string() + &jobs.to_string(),
                "UnixStartTime: 0".into(),
            ],
            jobs: Vec::with_capacity(jobs),
        };
        let mut clock = 0.0;
        for number in 1..=jobs as i64 {
            // Exponential inter-arrival with a 10 s mean.
            clock += -10.0 * (1.0 - rng.f64()).ln();
            let requested = ert.sample(rng).as_secs_f64();
            let run_time = (requested * rng.f64_range(0.9, 1.1)).max(1.0);
            let memory_kb = [1, 2, 4, 8, 16][rng.index(5)] * 1024 * 1024;
            trace.jobs.push(SwfJob {
                job_number: number,
                submit_time: clock.round(),
                wait_time: -1.0,
                run_time: run_time.round(),
                allocated_processors: 1,
                average_cpu_time: -1.0,
                used_memory_kb: -1,
                requested_processors: 1,
                requested_time: requested.round(),
                requested_memory_kb: memory_kb,
                status: 1,
                user_id: rng.u64_range(1, 64) as i64,
                group_id: rng.u64_range(1, 8) as i64,
                executable: rng.u64_range(1, 32) as i64,
                queue: 1,
                partition: 1,
                preceding_job: -1,
                think_time: -1.0,
            });
        }
        trace
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = "\
; Version: 2.2
; Computer: Test Cluster
1 0 5 3600 1 -1 -1 1 7200 2097152 1 3 1 1 1 1 -1 -1
2 10 -1 1800 1 -1 -1 1 3600 4194304 0 4 1 2 1 1 -1 -1
3 25 2 900.5 1 -1 -1 1 -1 -1 1 5 1 3 1 1 -1 -1
";

    #[test]
    fn parses_header_and_jobs() {
        let trace: SwfTrace = SAMPLE.parse().unwrap();
        assert_eq!(trace.header.len(), 2);
        assert_eq!(trace.header[0], "Version: 2.2");
        assert_eq!(trace.len(), 3);
        let first = &trace.jobs[0];
        assert_eq!(first.job_number, 1);
        assert_eq!(first.requested_time, 7200.0);
        assert_eq!(first.requested_memory_kb, 2 * 1024 * 1024);
        assert!(first.completed());
        assert!(!trace.jobs[1].completed()); // status 0 = failed
    }

    #[test]
    fn time_estimate_prefers_requested_time() {
        let trace: SwfTrace = SAMPLE.parse().unwrap();
        assert_eq!(trace.jobs[0].time_estimate(), Some(7200.0));
        // Job 3 has no requested time: fall back to run time.
        assert_eq!(trace.jobs[2].time_estimate(), Some(900.5));
    }

    #[test]
    fn round_trips_through_display() {
        let trace: SwfTrace = SAMPLE.parse().unwrap();
        let again: SwfTrace = trace.to_string().parse().unwrap();
        assert_eq!(trace, again);
    }

    #[test]
    fn rejects_wrong_field_counts() {
        let err = "1 2 3".parse::<SwfTrace>().unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.to_string().contains("18 fields"), "{err}");
    }

    #[test]
    fn rejects_non_numeric_fields() {
        let bad = SAMPLE.replace("3600", "lots");
        let err = bad.parse::<SwfTrace>().unwrap_err();
        assert!(err.to_string().contains("field"), "{err}");
    }

    #[test]
    fn empty_and_blank_lines_are_fine() {
        let trace: SwfTrace = "\n\n; header only\n\n".parse().unwrap();
        assert!(trace.is_empty());
        assert_eq!(trace.header.len(), 1);
    }

    #[test]
    fn synthesized_traces_are_valid_swf() {
        let mut rng = SimRng::seed_from(5);
        let trace = SwfTrace::synthesize(200, &mut rng);
        assert_eq!(trace.len(), 200);
        let reparsed: SwfTrace = trace.to_string().parse().unwrap();
        assert_eq!(trace, reparsed);
        // Submissions are monotone and requested times within the paper's
        // clamp window.
        for pair in trace.jobs.windows(2) {
            assert!(pair[0].submit_time <= pair[1].submit_time);
        }
        for job in &trace.jobs {
            assert!(job.requested_time >= 3600.0 && job.requested_time <= 4.0 * 3600.0);
            assert!(job.completed());
        }
    }

    #[test]
    fn synthesized_arrival_rate_is_about_one_per_ten_seconds() {
        let mut rng = SimRng::seed_from(6);
        let trace = SwfTrace::synthesize(2000, &mut rng);
        let span = trace.jobs.last().unwrap().submit_time;
        let mean_gap = span / 1999.0;
        assert!((mean_gap - 10.0).abs() < 1.0, "mean inter-arrival {mean_gap}s");
    }
}
