//! Bounded in-memory trace recording: [`RingRecorder`] and the
//! exported [`Trace`] it produces.

use crate::event::ProbeEvent;
use crate::Probe;
use aria_sim::SimTime;
use std::collections::VecDeque;

/// One recorded transition: a sequence number, a sim-time stamp, and the
/// structured event.
///
/// `seq` is assigned at record time and never reused, so even after the
/// ring evicts old entries the remaining sequence numbers reveal how many
/// events preceded the window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEntry {
    /// Zero-based position in the full event stream.
    pub seq: u64,
    /// Simulated time of the transition (never wall-clock).
    pub at: SimTime,
    /// The transition itself.
    pub event: ProbeEvent,
}

/// Run identification carried in a trace header.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TraceMeta {
    /// Scenario name (or `"model"` for checker counterexamples).
    pub scenario: String,
    /// RNG seed of the run.
    pub seed: u64,
    /// Number of overlay nodes.
    pub nodes: u64,
    /// Number of submitted jobs.
    pub jobs: u64,
}

/// A finished recording: header metadata plus the retained entries in
/// record order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Trace {
    /// Run identification, embedded in the JSONL header line.
    pub meta: TraceMeta,
    /// Entries evicted by the bounded ring before export.
    pub dropped: u64,
    /// Retained entries, oldest first, `seq` strictly increasing.
    pub entries: Vec<TraceEntry>,
}

impl Trace {
    /// Total number of events recorded over the run, including evicted
    /// ones.
    pub fn recorded(&self) -> u64 {
        self.dropped + self.entries.len() as u64
    }
}

/// A bounded ring-buffer [`Probe`]: keeps the most recent `capacity`
/// events, counting (not storing) whatever the window evicts.
///
/// Recording is allocation-free after the ring reaches capacity; the
/// buffer is pre-allocated up front for traces that are expected to fit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RingRecorder {
    capacity: usize,
    next_seq: u64,
    dropped: u64,
    entries: VecDeque<TraceEntry>,
}

impl RingRecorder {
    /// Default ring capacity: roomy enough to hold a scaled scenario's
    /// full event stream (~1M entries).
    pub const DEFAULT_CAPACITY: usize = 1 << 20;

    /// Creates a recorder retaining at most `capacity` entries
    /// (minimum 1).
    pub fn with_capacity(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        RingRecorder {
            capacity,
            next_seq: 0,
            dropped: 0,
            // Cap the eager reservation so tiny test rings stay tiny and
            // a fat-fingered capacity does not OOM up front.
            entries: VecDeque::with_capacity(capacity.min(Self::DEFAULT_CAPACITY)),
        }
    }

    /// Number of retained entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Entries evicted so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Finishes the recording, attaching run metadata.
    pub fn into_trace(self, meta: TraceMeta) -> Trace {
        Trace { meta, dropped: self.dropped, entries: self.entries.into_iter().collect() }
    }
}

impl Default for RingRecorder {
    fn default() -> Self {
        RingRecorder::with_capacity(Self::DEFAULT_CAPACITY)
    }
}

impl Probe for RingRecorder {
    #[inline]
    fn record(&mut self, now: SimTime, event: ProbeEvent) {
        if self.entries.len() == self.capacity {
            self.entries.pop_front();
            self.dropped += 1;
        }
        self.entries.push_back(TraceEntry { seq: self.next_seq, at: now, event });
        self.next_seq += 1;
    }

    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::JobId;

    fn lost(n: u64) -> ProbeEvent {
        ProbeEvent::JobLost { job: JobId::new(n) }
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut r = RingRecorder::with_capacity(2);
        for i in 0..5 {
            r.record(SimTime::from_millis(i), lost(i));
        }
        assert_eq!(r.len(), 2);
        assert_eq!(r.dropped(), 3);
        let trace = r.into_trace(TraceMeta::default());
        assert_eq!(trace.recorded(), 5);
        assert_eq!(trace.entries[0].seq, 3);
        assert_eq!(trace.entries[1].seq, 4);
        assert_eq!(trace.entries[1].at, SimTime::from_millis(4));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut r = RingRecorder::with_capacity(0);
        r.record(SimTime::ZERO, lost(0));
        r.record(SimTime::ZERO, lost(1));
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }

    #[test]
    fn seq_is_strictly_increasing() {
        let mut r = RingRecorder::default();
        for i in 0..100 {
            r.record(SimTime::from_millis(i / 10), lost(i));
        }
        let t = r.into_trace(TraceMeta::default());
        assert_eq!(t.dropped, 0);
        for (i, e) in t.entries.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
        }
    }
}
