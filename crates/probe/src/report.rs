//! Structured progress reporting for long-running tooling.
//!
//! The paper-reproduction driver and the `cargo xtask probe` CLI both
//! report progress through [`ProgressSink`] instead of scattering ad-hoc
//! `eprintln!` calls, so every tool renders progress the same way and
//! tests can capture it with [`MemorySink`].

use std::fmt;

/// One structured progress event.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Progress {
    /// The tool or phase reporting (e.g. `"reproduce"`, `"probe"`).
    pub stage: String,
    /// Human-readable description of the step.
    pub detail: String,
    /// Optional `(done, total)` step counter.
    pub step: Option<(usize, usize)>,
}

impl Progress {
    /// Creates a progress event without a step counter.
    pub fn new(stage: impl Into<String>, detail: impl Into<String>) -> Self {
        Progress { stage: stage.into(), detail: detail.into(), step: None }
    }

    /// Attaches a `(done, total)` step counter.
    pub fn with_step(mut self, done: usize, total: usize) -> Self {
        self.step = Some((done, total));
        self
    }
}

impl fmt::Display for Progress {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.step {
            Some((done, total)) => {
                write!(f, "{}: [{}/{}] {}", self.stage, done, total, self.detail)
            }
            None => write!(f, "{}: {}", self.stage, self.detail),
        }
    }
}

/// Receives progress events from a running tool.
pub trait ProgressSink {
    /// Handles one progress event.
    fn report(&mut self, progress: &Progress);
}

/// Renders each event as one line on standard error.
#[derive(Debug, Clone, Copy, Default)]
pub struct StderrSink;

impl ProgressSink for StderrSink {
    fn report(&mut self, progress: &Progress) {
        eprintln!("{progress}");
    }
}

/// Discards all events.
#[derive(Debug, Clone, Copy, Default)]
pub struct NullSink;

impl ProgressSink for NullSink {
    fn report(&mut self, _progress: &Progress) {}
}

/// Captures events in memory, for tests.
#[derive(Debug, Clone, Default)]
pub struct MemorySink {
    /// Every event reported so far, in order.
    pub events: Vec<Progress>,
}

impl ProgressSink for MemorySink {
    fn report(&mut self, progress: &Progress) {
        self.events.push(progress.clone());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_step_counter() {
        let p = Progress::new("reproduce", "fig4 over 3 seeds").with_step(2, 12);
        assert_eq!(p.to_string(), "reproduce: [2/12] fig4 over 3 seeds");
        assert_eq!(Progress::new("probe", "writing trace").to_string(), "probe: writing trace");
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut sink = MemorySink::default();
        sink.report(&Progress::new("a", "one"));
        sink.report(&Progress::new("a", "two"));
        assert_eq!(sink.events.len(), 2);
        assert_eq!(sink.events[1].detail, "two");
    }
}
