//! The structured event catalog: one [`ProbeEvent`] per protocol
//! transition the simulator can take.
//!
//! Events are small `Copy` values — recording one through the [`Probe`]
//! trait never allocates, so the hot path stays allocation-free whether
//! the probe is a ring recorder or the no-op [`NullProbe`].
//!
//! [`Probe`]: crate::Probe
//! [`NullProbe`]: crate::NullProbe

use aria_grid::JobId;
use aria_overlay::NodeId;
use std::fmt;

/// Which flood a hop or bid belongs to: a REQUEST discovery round or an
/// INFORM rescheduling advertisement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum FloodKind {
    /// REQUEST flood (§III-B job advertisement).
    Request,
    /// INFORM flood (§III-D rescheduling advertisement).
    Inform,
}

impl FloodKind {
    /// Stable schema name.
    pub const fn name(self) -> &'static str {
        match self {
            FloodKind::Request => "request",
            FloodKind::Inform => "inform",
        }
    }
}

/// The wire message class of a dropped message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum MsgKind {
    /// REQUEST flood hop.
    Request,
    /// ACCEPT cost offer.
    Accept,
    /// INFORM flood hop.
    Inform,
    /// ASSIGN delegation.
    Assign,
    /// ACK delivery acknowledgement (fault-layer ASSIGN hardening;
    /// schema v2).
    Ack,
}

impl MsgKind {
    /// Stable schema name.
    pub const fn name(self) -> &'static str {
        match self {
            MsgKind::Request => "request",
            MsgKind::Accept => "accept",
            MsgKind::Inform => "inform",
            MsgKind::Assign => "assign",
            MsgKind::Ack => "ack",
        }
    }
}

/// One observable protocol transition.
///
/// Every variant is stamped with the sim-time at which the transition
/// happened when it is recorded (see [`TraceEntry`]); the payloads here
/// carry only the *what*, never wall-clock data.
///
/// Costs are carried as raw scheduler-cost milliseconds
/// ([`aria_grid::Cost::as_millis`]) so the event stays `Copy` and the
/// JSONL schema stays integer-only.
///
/// [`TraceEntry`]: crate::TraceEntry
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProbeEvent {
    /// A job entered the grid at its initiator (§III-B).
    JobSubmitted {
        /// The submitted job.
        job: JobId,
        /// The node it was submitted to.
        initiator: NodeId,
    },
    /// The initiator opened a REQUEST round: a fresh flood was seeded and
    /// the offer window scheduled.
    RequestRound {
        /// The advertised job.
        job: JobId,
        /// The flooding initiator.
        initiator: NodeId,
        /// Retry round (0 = first attempt).
        round: u32,
        /// Flood id seeded for this round.
        flood: u32,
        /// Number of neighbors the flood was seeded to.
        seeds: u32,
    },
    /// A flood hop arrived at a node (REQUEST or INFORM).
    FloodHop {
        /// REQUEST or INFORM flood.
        kind: FloodKind,
        /// The advertised job.
        job: JobId,
        /// Flood id the hop belongs to.
        flood: u32,
        /// The node the hop arrived at.
        node: NodeId,
        /// Remaining hop budget on arrival.
        hops_left: u32,
        /// Whether duplicate suppression discarded the hop.
        duplicate: bool,
    },
    /// A node answered a flood with an ACCEPT cost offer (§III-C).
    BidSent {
        /// Flood kind the bid answers.
        kind: FloodKind,
        /// The job being bid on.
        job: JobId,
        /// The offering node.
        from: NodeId,
        /// The initiator (REQUEST) or current assignee (INFORM).
        to: NodeId,
        /// Offered cost in scheduler-cost milliseconds.
        cost_ms: i64,
    },
    /// An ACCEPT landed inside an open offer window at the initiator.
    OfferReceived {
        /// The job the offer concerns.
        job: JobId,
        /// The collecting initiator.
        initiator: NodeId,
        /// The offering node.
        from: NodeId,
        /// Offered cost in scheduler-cost milliseconds.
        cost_ms: i64,
        /// Whether this offer became the current best.
        best: bool,
    },
    /// A job was delegated with ASSIGN — initial assignment when
    /// `reschedule` is false, an INFORM-triggered steal otherwise.
    Assigned {
        /// The delegated job.
        job: JobId,
        /// The assigning node (initiator, or current holder on a steal).
        by: NodeId,
        /// The new executor.
        to: NodeId,
        /// Whether this is a §III-D reschedule rather than the initial
        /// assignment.
        reschedule: bool,
    },
    /// An offer window closed empty; a fresh REQUEST round was scheduled.
    RetryScheduled {
        /// The unplaced job.
        job: JobId,
        /// The retrying initiator.
        initiator: NodeId,
        /// The upcoming round number.
        round: u32,
    },
    /// The initiator gave up on a job after exhausting its retry budget.
    JobAbandoned {
        /// The abandoned job.
        job: JobId,
        /// The abandoning initiator.
        initiator: NodeId,
    },
    /// A job entered a node's scheduler queue.
    Enqueued {
        /// The queued job.
        job: JobId,
        /// The executing node.
        node: NodeId,
        /// Waiting-queue depth after the insert.
        depth: u32,
    },
    /// A job left the waiting queue and began executing.
    Started {
        /// The started job.
        job: JobId,
        /// The executing node.
        node: NodeId,
    },
    /// A job finished executing.
    Completed {
        /// The finished job.
        job: JobId,
        /// The executing node.
        node: NodeId,
    },
    /// A waiting job's assignee flooded an INFORM advertisement (§III-D).
    InformRound {
        /// The advertised job.
        job: JobId,
        /// The current assignee.
        node: NodeId,
        /// Flood id seeded for the advertisement.
        flood: u32,
        /// The assignee's advertised cost in scheduler-cost milliseconds.
        cost_ms: i64,
    },
    /// A node joined the overlay mid-run (§V-D churn).
    NodeJoined {
        /// The new node.
        node: NodeId,
    },
    /// A node crashed, dropping its queue and in-flight work.
    NodeCrashed {
        /// The crashed node.
        node: NodeId,
        /// Jobs resident on the node at crash time.
        lost_jobs: u32,
    },
    /// The failsafe initiator noticed a dead assignee and re-advertised
    /// the job (§III-E).
    RecoveryStarted {
        /// The recovered job.
        job: JobId,
        /// The initiator running the failsafe.
        initiator: NodeId,
    },
    /// A job was lost for good (dead initiator, failsafe disabled, …).
    JobLost {
        /// The lost job.
        job: JobId,
    },
    /// A message addressed to a crashed node — or claimed by the fault
    /// layer (loss, open partition cut) — was dropped by the transport.
    MessageDropped {
        /// Wire class of the dropped message.
        kind: MsgKind,
        /// The job the message concerned.
        job: JobId,
        /// The unreachable destination.
        to: NodeId,
    },
    /// An unacknowledged ASSIGN was retransmitted by the fault-layer
    /// hardening (schema v2).
    AssignRetransmit {
        /// The job whose ASSIGN went unacknowledged.
        job: JobId,
        /// The assignee being retried.
        to: NodeId,
        /// Retry attempt number (1 = first retransmit).
        attempt: u32,
    },
    /// An assignee's ACK reached the assigner; the retransmit timer is
    /// disarmed (schema v2).
    AckReceived {
        /// The acknowledged job.
        job: JobId,
        /// The acknowledging assignee.
        from: NodeId,
    },
    /// A duplicate delivery was recognized and suppressed instead of
    /// re-applied (schema v2). Flood duplicates keep reporting through
    /// [`ProbeEvent::FloodHop`] `duplicate`; this covers the
    /// point-to-point kinds.
    DuplicateSuppressed {
        /// Wire class of the suppressed duplicate.
        kind: MsgKind,
        /// The job the duplicate concerned.
        job: JobId,
        /// The node that suppressed it.
        node: NodeId,
    },
    /// A scheduled overlay partition window opened (schema v2).
    PartitionStarted {
        /// Index of the window in the fault plan.
        window: u32,
    },
    /// A scheduled overlay partition window healed (schema v2).
    PartitionHealed {
        /// Index of the window in the fault plan.
        window: u32,
    },
    /// A failure detector marked a silent peer as suspected (schema v4).
    ///
    /// Suspicion is telemetry-only: the peer stays in fan-out sampling
    /// and bid candidacy until it is declared dead.
    PeerSuspected {
        /// The silent peer.
        peer: NodeId,
        /// The node whose detector raised the suspicion.
        by: NodeId,
    },
    /// A failure detector declared a peer dead (schema v4): excluded
    /// from fan-out and assignment, delegations to it recovered.
    PeerDead {
        /// The dead peer.
        peer: NodeId,
        /// The node whose detector declared it.
        by: NodeId,
    },
    /// A previously dead peer came back (restart or partition heal) and
    /// re-entered live membership (schema v4).
    PeerRejoined {
        /// The returning peer.
        peer: NodeId,
        /// The node whose detector readmitted it.
        by: NodeId,
    },
    /// Periodic world sample: node occupancy and event-queue pressure.
    ///
    /// All four gauges are u64 (schema v3): at 100k+ node scales the
    /// queued-job and event-queue counts overflow the u32s they were
    /// first recorded as.
    Gauge {
        /// Nodes with an empty scheduler.
        idle: u64,
        /// Jobs waiting in scheduler queues, grid-wide.
        queued: u64,
        /// Pending entries in the simulation event queue.
        pending_events: u64,
        /// High-water mark of the event queue so far.
        peak_events: u64,
    },
}

impl ProbeEvent {
    /// Stable schema name of this event kind (the JSONL `"kind"` field).
    pub const fn kind(&self) -> &'static str {
        match self {
            ProbeEvent::JobSubmitted { .. } => "job-submitted",
            ProbeEvent::RequestRound { .. } => "request-round",
            ProbeEvent::FloodHop { .. } => "flood-hop",
            ProbeEvent::BidSent { .. } => "bid-sent",
            ProbeEvent::OfferReceived { .. } => "offer-received",
            ProbeEvent::Assigned { .. } => "assigned",
            ProbeEvent::RetryScheduled { .. } => "retry-scheduled",
            ProbeEvent::JobAbandoned { .. } => "job-abandoned",
            ProbeEvent::Enqueued { .. } => "enqueued",
            ProbeEvent::Started { .. } => "started",
            ProbeEvent::Completed { .. } => "completed",
            ProbeEvent::InformRound { .. } => "inform-round",
            ProbeEvent::NodeJoined { .. } => "node-joined",
            ProbeEvent::NodeCrashed { .. } => "node-crashed",
            ProbeEvent::RecoveryStarted { .. } => "recovery-started",
            ProbeEvent::JobLost { .. } => "job-lost",
            ProbeEvent::MessageDropped { .. } => "message-dropped",
            ProbeEvent::AssignRetransmit { .. } => "assign-retransmit",
            ProbeEvent::AckReceived { .. } => "ack-received",
            ProbeEvent::DuplicateSuppressed { .. } => "duplicate-suppressed",
            ProbeEvent::PartitionStarted { .. } => "partition-started",
            ProbeEvent::PartitionHealed { .. } => "partition-healed",
            ProbeEvent::PeerSuspected { .. } => "peer-suspected",
            ProbeEvent::PeerDead { .. } => "peer-dead",
            ProbeEvent::PeerRejoined { .. } => "peer-rejoined",
            ProbeEvent::Gauge { .. } => "gauge",
        }
    }

    /// The job this event concerns, if any.
    pub const fn job(&self) -> Option<JobId> {
        match *self {
            ProbeEvent::JobSubmitted { job, .. }
            | ProbeEvent::RequestRound { job, .. }
            | ProbeEvent::FloodHop { job, .. }
            | ProbeEvent::BidSent { job, .. }
            | ProbeEvent::OfferReceived { job, .. }
            | ProbeEvent::Assigned { job, .. }
            | ProbeEvent::RetryScheduled { job, .. }
            | ProbeEvent::JobAbandoned { job, .. }
            | ProbeEvent::Enqueued { job, .. }
            | ProbeEvent::Started { job, .. }
            | ProbeEvent::Completed { job, .. }
            | ProbeEvent::InformRound { job, .. }
            | ProbeEvent::RecoveryStarted { job, .. }
            | ProbeEvent::JobLost { job }
            | ProbeEvent::MessageDropped { job, .. }
            | ProbeEvent::AssignRetransmit { job, .. }
            | ProbeEvent::AckReceived { job, .. }
            | ProbeEvent::DuplicateSuppressed { job, .. } => Some(job),
            ProbeEvent::NodeJoined { .. }
            | ProbeEvent::NodeCrashed { .. }
            | ProbeEvent::PartitionStarted { .. }
            | ProbeEvent::PartitionHealed { .. }
            | ProbeEvent::PeerSuspected { .. }
            | ProbeEvent::PeerDead { .. }
            | ProbeEvent::PeerRejoined { .. }
            | ProbeEvent::Gauge { .. } => None,
        }
    }

    /// The node where this event happened, if the event is localized.
    ///
    /// For message-shaped events this is the *acting* node (the flood
    /// arrival node, the bidder, the collecting initiator, the assigner);
    /// for [`ProbeEvent::MessageDropped`] it is the unreachable
    /// destination.
    pub const fn node(&self) -> Option<NodeId> {
        match *self {
            ProbeEvent::JobSubmitted { initiator, .. }
            | ProbeEvent::RequestRound { initiator, .. }
            | ProbeEvent::OfferReceived { initiator, .. }
            | ProbeEvent::RetryScheduled { initiator, .. }
            | ProbeEvent::JobAbandoned { initiator, .. }
            | ProbeEvent::RecoveryStarted { initiator, .. } => Some(initiator),
            ProbeEvent::FloodHop { node, .. }
            | ProbeEvent::Enqueued { node, .. }
            | ProbeEvent::Started { node, .. }
            | ProbeEvent::Completed { node, .. }
            | ProbeEvent::InformRound { node, .. }
            | ProbeEvent::NodeJoined { node }
            | ProbeEvent::NodeCrashed { node, .. } => Some(node),
            ProbeEvent::BidSent { from, .. } => Some(from),
            ProbeEvent::Assigned { by, .. } => Some(by),
            ProbeEvent::MessageDropped { to, .. } | ProbeEvent::AssignRetransmit { to, .. } => {
                Some(to)
            }
            ProbeEvent::AckReceived { from, .. } => Some(from),
            ProbeEvent::DuplicateSuppressed { node, .. } => Some(node),
            ProbeEvent::PeerSuspected { by, .. }
            | ProbeEvent::PeerDead { by, .. }
            | ProbeEvent::PeerRejoined { by, .. } => Some(by),
            ProbeEvent::JobLost { .. }
            | ProbeEvent::PartitionStarted { .. }
            | ProbeEvent::PartitionHealed { .. }
            | ProbeEvent::Gauge { .. } => None,
        }
    }
}

impl fmt::Display for ProbeEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ProbeEvent::JobSubmitted { job, initiator } => {
                write!(f, "{job} submitted at {initiator}")
            }
            ProbeEvent::RequestRound { job, initiator, round, flood, seeds } => {
                write!(f, "{job} REQUEST round {round} from {initiator} (flood-{flood}, {seeds} seeds)")
            }
            ProbeEvent::FloodHop { kind, job, flood, node, hops_left, duplicate } => {
                let dup = if duplicate { ", duplicate" } else { "" };
                write!(
                    f,
                    "{} hop for {job} at {node} (flood-{flood}, ttl={hops_left}{dup})",
                    kind.name().to_ascii_uppercase()
                )
            }
            ProbeEvent::BidSent { kind, job, from, to, cost_ms } => {
                write!(
                    f,
                    "{from} bids {cost_ms}ms on {job} to {to} ({} reply)",
                    kind.name().to_ascii_uppercase()
                )
            }
            ProbeEvent::OfferReceived { job, initiator, from, cost_ms, best } => {
                let mark = if best { ", new best" } else { "" };
                write!(f, "{initiator} collects offer {cost_ms}ms for {job} from {from}{mark}")
            }
            ProbeEvent::Assigned { job, by, to, reschedule } => {
                if reschedule {
                    write!(f, "{job} rescheduled: {by} yields to {to}")
                } else {
                    write!(f, "{job} assigned by {by} to {to}")
                }
            }
            ProbeEvent::RetryScheduled { job, initiator, round } => {
                write!(f, "{job} offer window empty at {initiator}; retry round {round}")
            }
            ProbeEvent::JobAbandoned { job, initiator } => {
                write!(f, "{job} abandoned by {initiator}")
            }
            ProbeEvent::Enqueued { job, node, depth } => {
                write!(f, "{job} enqueued at {node} (depth {depth})")
            }
            ProbeEvent::Started { job, node } => write!(f, "{job} started on {node}"),
            ProbeEvent::Completed { job, node } => write!(f, "{job} completed on {node}"),
            ProbeEvent::InformRound { job, node, flood, cost_ms } => {
                write!(f, "{node} INFORMs for {job} at {cost_ms}ms (flood-{flood})")
            }
            ProbeEvent::NodeJoined { node } => write!(f, "{node} joined"),
            ProbeEvent::NodeCrashed { node, lost_jobs } => {
                write!(f, "{node} crashed ({lost_jobs} resident jobs)")
            }
            ProbeEvent::RecoveryStarted { job, initiator } => {
                write!(f, "{initiator} recovers {job} (failsafe)")
            }
            ProbeEvent::JobLost { job } => write!(f, "{job} lost"),
            ProbeEvent::MessageDropped { kind, job, to } => {
                // Dead destination or lossy transport — the cause is the
                // neighboring crash/fault event, not repeated here.
                write!(f, "{} for {job} dropped on its way to {to}", kind.name().to_ascii_uppercase())
            }
            ProbeEvent::AssignRetransmit { job, to, attempt } => {
                write!(f, "ASSIGN for {job} retransmitted to {to} (attempt {attempt})")
            }
            ProbeEvent::AckReceived { job, from } => {
                write!(f, "ACK for {job} from {from}")
            }
            ProbeEvent::DuplicateSuppressed { kind, job, node } => {
                write!(
                    f,
                    "duplicate {} for {job} suppressed at {node}",
                    kind.name().to_ascii_uppercase()
                )
            }
            ProbeEvent::PartitionStarted { window } => {
                write!(f, "partition window {window} opened")
            }
            ProbeEvent::PartitionHealed { window } => {
                write!(f, "partition window {window} healed")
            }
            ProbeEvent::PeerSuspected { peer, by } => {
                write!(f, "{by} suspects {peer} (missed heartbeats)")
            }
            ProbeEvent::PeerDead { peer, by } => {
                write!(f, "{by} declares {peer} dead")
            }
            ProbeEvent::PeerRejoined { peer, by } => {
                write!(f, "{by} readmits {peer} to live membership")
            }
            ProbeEvent::Gauge { idle, queued, pending_events, peak_events } => {
                write!(
                    f,
                    "gauge: {idle} idle nodes, {queued} queued jobs, {pending_events} pending events (peak {peak_events})"
                )
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_stay_copy_small() {
        // The hot path records by value; keep the payload a few words.
        assert!(std::mem::size_of::<ProbeEvent>() <= 40, "{}", std::mem::size_of::<ProbeEvent>());
    }

    #[test]
    fn job_and_node_accessors() {
        let e = ProbeEvent::JobSubmitted { job: JobId::new(7), initiator: NodeId::new(3) };
        assert_eq!(e.job(), Some(JobId::new(7)));
        assert_eq!(e.node(), Some(NodeId::new(3)));
        let g = ProbeEvent::Gauge { idle: 1, queued: 2, pending_events: 3, peak_events: 4 };
        assert_eq!(g.job(), None);
        assert_eq!(g.node(), None);
        assert_eq!(g.kind(), "gauge");
    }

    #[test]
    fn display_is_human_readable() {
        let e = ProbeEvent::Assigned {
            job: JobId::new(1),
            by: NodeId::new(0),
            to: NodeId::new(9),
            reschedule: true,
        };
        assert_eq!(e.to_string(), "job-000001 rescheduled: n0 yields to n9");
    }
}
