//! Trace diffing: find where two event streams first stop matching.
//!
//! Bit-for-bit goldens tell you *that* two runs match; this tells you
//! *where* they stopped matching — the first entry whose (seq, sim-time,
//! event) triple differs, or the point where one trace ends early.

use crate::record::{Trace, TraceEntry};
use std::fmt;

/// The first point where two traces disagree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Divergence {
    /// Zero-based entry index into both traces.
    pub index: usize,
    /// The left trace's entry, if it still has one at `index`.
    pub left: Option<TraceEntry>,
    /// The right trace's entry, if it still has one at `index`.
    pub right: Option<TraceEntry>,
}

impl fmt::Display for Divergence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "first divergence at entry {}:", self.index)?;
        match &self.left {
            Some(e) => writeln!(
                f,
                "  left : seq {} at {} {} — {}",
                e.seq,
                e.at,
                e.event.node().map_or_else(|| "(global)".to_string(), |n| n.to_string()),
                e.event
            )?,
            None => writeln!(f, "  left : <trace ended>")?,
        }
        match &self.right {
            Some(e) => write!(
                f,
                "  right: seq {} at {} {} — {}",
                e.seq,
                e.at,
                e.event.node().map_or_else(|| "(global)".to_string(), |n| n.to_string()),
                e.event
            ),
            None => write!(f, "  right: <trace ended>"),
        }
    }
}

/// Compares two traces entry-by-entry, returning the first mismatch.
///
/// Header metadata (scenario, seed) is deliberately ignored: diffing two
/// runs with different seeds is exactly the nondeterminism-bisection use
/// case, and the interesting answer is the first divergent *event*.
pub fn first_divergence(left: &Trace, right: &Trace) -> Option<Divergence> {
    let n = left.entries.len().max(right.entries.len());
    for index in 0..n {
        let l = left.entries.get(index).copied();
        let r = right.entries.get(index).copied();
        if l != r {
            return Some(Divergence { index, left: l, right: r });
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ProbeEvent;
    use crate::record::TraceMeta;
    use aria_grid::JobId;
    use aria_overlay::NodeId;
    use aria_sim::SimTime;

    fn trace(entries: Vec<TraceEntry>) -> Trace {
        Trace { meta: TraceMeta::default(), dropped: 0, entries }
    }

    fn submitted(seq: u64, job: u64, node: u32) -> TraceEntry {
        TraceEntry {
            seq,
            at: SimTime::from_secs(seq),
            event: ProbeEvent::JobSubmitted {
                job: JobId::new(job),
                initiator: NodeId::new(node),
            },
        }
    }

    #[test]
    fn identical_traces_do_not_diverge() {
        let a = trace(vec![submitted(0, 1, 2), submitted(1, 2, 3)]);
        let b = a.clone();
        assert_eq!(first_divergence(&a, &b), None);
    }

    #[test]
    fn differing_entry_is_located() {
        let a = trace(vec![submitted(0, 1, 2), submitted(1, 2, 3)]);
        let b = trace(vec![submitted(0, 1, 2), submitted(1, 2, 4)]);
        let d = first_divergence(&a, &b).expect("divergence");
        assert_eq!(d.index, 1);
        let rendered = d.to_string();
        assert!(rendered.contains("n3"), "{rendered}");
        assert!(rendered.contains("n4"), "{rendered}");
        assert!(rendered.contains("0h00m01s"), "{rendered}");
    }

    #[test]
    fn shorter_trace_diverges_at_its_end() {
        let a = trace(vec![submitted(0, 1, 2), submitted(1, 2, 3)]);
        let b = trace(vec![submitted(0, 1, 2)]);
        let d = first_divergence(&a, &b).expect("divergence");
        assert_eq!(d.index, 1);
        assert!(d.left.is_some());
        assert!(d.right.is_none());
        assert!(d.to_string().contains("<trace ended>"));
    }

    #[test]
    fn metadata_differences_alone_do_not_diverge() {
        let mut a = trace(vec![submitted(0, 1, 2)]);
        let mut b = a.clone();
        a.meta.seed = 1;
        b.meta.seed = 2;
        assert_eq!(first_divergence(&a, &b), None);
    }
}
