//! # aria-probe — deterministic structured event tracing
//!
//! A zero-cost observability layer for the ARiA simulator. The world
//! is generic over a [`Probe`]; every protocol transition (submission,
//! flood hops, offers, assignments, reschedules, queue movement,
//! execution, churn, drops) calls [`Probe::record`] with a small `Copy`
//! [`ProbeEvent`]. Monomorphization makes the disabled case free:
//! [`NullProbe::record`] is an empty inline body, so `World<NullProbe>`
//! (the default) compiles to exactly the uninstrumented hot path.
//!
//! With a [`RingRecorder`] plugged in instead, the most recent events
//! are retained in a bounded ring with **sim-time** stamps (wall-clock
//! never appears in a trace) and exported as versioned JSONL
//! ([`schema`]). On top of the raw stream sit derived views
//! ([`views`]): per-job causal lifecycle timelines, per-node
//! utilization/queue-depth histograms, flood fan-out and
//! offers-per-request counters — and a trace differ ([`diff`]) that
//! finds the first divergent event between two runs.
//!
//! ## Determinism rules for probe code
//!
//! Probe code is sim-reachable and obeys the same rules as the
//! simulator (`cargo xtask lint` covers this crate):
//!
//! * timestamps are [`aria_sim::SimTime`] only — never wall-clock;
//! * aggregation uses ordered containers (`BTreeMap`/`BTreeSet`), so
//!   every view renders identically for identical traces;
//! * recording is allocation-free at steady state and events are
//!   `Copy`, so instrumentation cannot perturb the run it observes.
//!
//! ## Example
//!
//! ```
//! use aria_probe::{Probe, ProbeEvent, RingRecorder, TraceMeta};
//! use aria_grid::JobId;
//! use aria_overlay::NodeId;
//! use aria_sim::SimTime;
//!
//! let mut recorder = RingRecorder::with_capacity(1024);
//! recorder.record(
//!     SimTime::from_secs(60),
//!     ProbeEvent::JobSubmitted { job: JobId::new(0), initiator: NodeId::new(3) },
//! );
//! let trace = recorder.into_trace(TraceMeta::default());
//! let jsonl = aria_probe::schema::to_jsonl(&trace);
//! let back = aria_probe::schema::from_jsonl(&jsonl).unwrap();
//! assert_eq!(back, trace);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]
#![deny(missing_docs)]

pub mod diff;
pub mod event;
pub mod record;
pub mod report;
pub mod schema;
pub mod views;

pub use diff::{first_divergence, Divergence};
pub use event::{FloodKind, MsgKind, ProbeEvent};
pub use record::{RingRecorder, Trace, TraceEntry, TraceMeta};
pub use report::{MemorySink, NullSink, Progress, ProgressSink, StderrSink};
pub use schema::{SchemaError, SCHEMA_NAME, SCHEMA_VERSION};
pub use views::{job_timeline, lifecycles, render_timeline, summarize, Lifecycle, TraceSummary};

use aria_sim::SimTime;

/// A sink for structured protocol events, threaded through the
/// simulator's hot path by monomorphization.
///
/// ## Contract
///
/// * [`record`](Probe::record) must be cheap and must never panic: the
///   world calls it mid-transition.
/// * Implementations must not feed information back into the
///   simulation — a probe observes, it never participates. (The world
///   only ever calls `record`, so the type system enforces this.)
/// * `now` is simulated time; implementations must not consult
///   wall-clock time or any other ambient state, so that recording is
///   deterministic and a probed run stays bit-for-bit identical to an
///   unprobed one.
pub trait Probe {
    /// Records one protocol transition at sim-time `now`.
    fn record(&mut self, now: SimTime, event: ProbeEvent);

    /// Whether this probe retains events. `false` lets callers skip
    /// work that only matters when a trace is actually recorded.
    #[inline]
    fn enabled(&self) -> bool {
        true
    }
}

/// The default probe: records nothing, compiles to nothing.
///
/// `World<NullProbe>` is the uninstrumented simulator — the empty
/// `record` body is inlined and dead-code eliminated, which is verified
/// by the `bench_core` gate (±2%) and the bit-for-bit goldens.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullProbe;

impl Probe for NullProbe {
    #[inline(always)]
    fn record(&mut self, _now: SimTime, _event: ProbeEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}
