//! The versioned JSONL trace schema: export, parsing, validation.
//!
//! A trace file is line-oriented JSON:
//!
//! * line 1 — the header object:
//!   `{"schema":"aria-probe-trace","version":1,"scenario":…,"seed":…,
//!   "nodes":…,"jobs":…,"events":…,"dropped":…}`
//! * every following line — one event object:
//!   `{"seq":…,"t_ms":…,"kind":"…", <kind-specific integer/bool/string
//!   fields>}`
//!
//! ## Version policy
//!
//! [`SCHEMA_VERSION`] is bumped on any breaking change (field renamed or
//! removed, meaning changed, kind renamed) and on additive changes that
//! old readers would reject — readers ignore unknown *fields* but reject
//! unknown *kinds*, so a new kind bumps the version too. Writers always
//! stamp the current version; readers accept the current version and
//! every earlier one (older traces only use older kinds), and reject
//! newer versions rather than guessing.
//!
//! Version history:
//!
//! * **v1** — the original 18-kind catalog.
//! * **v2** — adds the fault-layer kinds `assign-retransmit`,
//!   `ack-received`, `duplicate-suppressed`, `partition-started`,
//!   `partition-healed` and the `ack` message kind. v1 traces still
//!   validate.
//! * **v3** — widens the four `gauge` fields from u32 to u64 (the wire
//!   form is unchanged — JSON integers — but v3 writers may emit values
//!   above `u32::MAX` at 100k+ node scales). v1/v2 traces still
//!   validate.
//! * **v4** — adds the live-membership kinds `peer-suspected`,
//!   `peer-dead` and `peer-rejoined` emitted by the `NodeDriver`
//!   failure detector. v1/v2/v3 traces still validate.
//!
//! The schema is deliberately integer/bool/string-only (sim-time in
//! milliseconds, costs in scheduler-cost milliseconds) so traces diff
//! bit-for-bit and no float formatting ambiguity exists.
//!
//! The dependency-free writer/parser pair below exists because the
//! workspace builds offline: the vendored `serde` is a no-op derive
//! stub, so JSON is emitted and consumed by hand.

use crate::event::{FloodKind, MsgKind, ProbeEvent};
use crate::record::{Trace, TraceEntry, TraceMeta};
use aria_grid::JobId;
use aria_overlay::NodeId;
use aria_sim::SimTime;
use std::fmt;

/// Identifies the trace format in the header line.
pub const SCHEMA_NAME: &str = "aria-probe-trace";

/// Current schema version; see the module docs for the bump policy.
pub const SCHEMA_VERSION: u64 = 4;

/// A parse or validation failure, with the 1-based line it occurred on
/// (line 0 = whole-file problems).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SchemaError {
    /// 1-based offending line; 0 for file-level errors.
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for SchemaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "trace schema error: {}", self.message)
        } else {
            write!(f, "trace schema error at line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for SchemaError {}

fn err(line: usize, message: impl Into<String>) -> SchemaError {
    SchemaError { line, message: message.into() }
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn push_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_u64(out: &mut String, key: &str, value: u64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_i64(out: &mut String, key: &str, value: i64) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(&value.to_string());
}

fn push_bool(out: &mut String, key: &str, value: bool) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    out.push_str(if value { "true" } else { "false" });
}

fn push_str(out: &mut String, key: &str, value: &str) {
    out.push_str(",\"");
    out.push_str(key);
    out.push_str("\":");
    push_escaped(out, value);
}

fn push_job(out: &mut String, key: &str, job: JobId) {
    push_u64(out, key, job.raw());
}

fn push_node(out: &mut String, key: &str, node: NodeId) {
    push_u64(out, key, u64::from(node.raw()));
}

/// Appends the header line (without trailing newline) for `trace`.
fn write_header(out: &mut String, trace: &Trace) {
    out.push_str(&header_line(&trace.meta, trace.entries.len() as u64, trace.dropped));
}

/// One header line (no trailing newline) for a trace with the given meta
/// and counts.
///
/// This is the streaming form used by the live runtime: event lines are
/// appended to a `.part` file as they happen, and the header — whose
/// event count is only known at shutdown — is prepended when the trace
/// is finalized.
pub fn header_line(meta: &TraceMeta, events: u64, dropped: u64) -> String {
    let mut out = String::with_capacity(128);
    out.push_str("{\"schema\":");
    push_escaped(&mut out, SCHEMA_NAME);
    push_u64(&mut out, "version", SCHEMA_VERSION);
    push_str(&mut out, "scenario", &meta.scenario);
    push_u64(&mut out, "seed", meta.seed);
    push_u64(&mut out, "nodes", meta.nodes);
    push_u64(&mut out, "jobs", meta.jobs);
    push_u64(&mut out, "events", events);
    push_u64(&mut out, "dropped", dropped);
    out.push('}');
    out
}

/// One event line (no trailing newline) — the streaming counterpart of
/// [`to_jsonl`], byte-identical to the line that function would emit.
pub fn entry_line(entry: &TraceEntry) -> String {
    let mut out = String::with_capacity(96);
    write_entry(&mut out, entry);
    out
}

/// Appends one event line (without trailing newline).
fn write_entry(out: &mut String, entry: &TraceEntry) {
    out.push_str("{\"seq\":");
    out.push_str(&entry.seq.to_string());
    push_u64(out, "t_ms", entry.at.as_millis());
    push_str(out, "kind", entry.event.kind());
    match entry.event {
        ProbeEvent::JobSubmitted { job, initiator } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
        }
        ProbeEvent::RequestRound { job, initiator, round, flood, seeds } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
            push_u64(out, "round", u64::from(round));
            push_u64(out, "flood", u64::from(flood));
            push_u64(out, "seeds", u64::from(seeds));
        }
        ProbeEvent::FloodHop { kind, job, flood, node, hops_left, duplicate } => {
            push_str(out, "flood_kind", kind.name());
            push_job(out, "job", job);
            push_u64(out, "flood", u64::from(flood));
            push_node(out, "node", node);
            push_u64(out, "hops_left", u64::from(hops_left));
            push_bool(out, "duplicate", duplicate);
        }
        ProbeEvent::BidSent { kind, job, from, to, cost_ms } => {
            push_str(out, "flood_kind", kind.name());
            push_job(out, "job", job);
            push_node(out, "from", from);
            push_node(out, "to", to);
            push_i64(out, "cost_ms", cost_ms);
        }
        ProbeEvent::OfferReceived { job, initiator, from, cost_ms, best } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
            push_node(out, "from", from);
            push_i64(out, "cost_ms", cost_ms);
            push_bool(out, "best", best);
        }
        ProbeEvent::Assigned { job, by, to, reschedule } => {
            push_job(out, "job", job);
            push_node(out, "by", by);
            push_node(out, "to", to);
            push_bool(out, "reschedule", reschedule);
        }
        ProbeEvent::RetryScheduled { job, initiator, round } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
            push_u64(out, "round", u64::from(round));
        }
        ProbeEvent::JobAbandoned { job, initiator } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
        }
        ProbeEvent::Enqueued { job, node, depth } => {
            push_job(out, "job", job);
            push_node(out, "node", node);
            push_u64(out, "depth", u64::from(depth));
        }
        ProbeEvent::Started { job, node } | ProbeEvent::Completed { job, node } => {
            push_job(out, "job", job);
            push_node(out, "node", node);
        }
        ProbeEvent::InformRound { job, node, flood, cost_ms } => {
            push_job(out, "job", job);
            push_node(out, "node", node);
            push_u64(out, "flood", u64::from(flood));
            push_i64(out, "cost_ms", cost_ms);
        }
        ProbeEvent::NodeJoined { node } => {
            push_node(out, "node", node);
        }
        ProbeEvent::NodeCrashed { node, lost_jobs } => {
            push_node(out, "node", node);
            push_u64(out, "lost_jobs", u64::from(lost_jobs));
        }
        ProbeEvent::RecoveryStarted { job, initiator } => {
            push_job(out, "job", job);
            push_node(out, "initiator", initiator);
        }
        ProbeEvent::JobLost { job } => {
            push_job(out, "job", job);
        }
        ProbeEvent::MessageDropped { kind, job, to } => {
            push_str(out, "msg_kind", kind.name());
            push_job(out, "job", job);
            push_node(out, "to", to);
        }
        ProbeEvent::AssignRetransmit { job, to, attempt } => {
            push_job(out, "job", job);
            push_node(out, "to", to);
            push_u64(out, "attempt", u64::from(attempt));
        }
        ProbeEvent::AckReceived { job, from } => {
            push_job(out, "job", job);
            push_node(out, "from", from);
        }
        ProbeEvent::DuplicateSuppressed { kind, job, node } => {
            push_str(out, "msg_kind", kind.name());
            push_job(out, "job", job);
            push_node(out, "node", node);
        }
        ProbeEvent::PartitionStarted { window } | ProbeEvent::PartitionHealed { window } => {
            push_u64(out, "window", u64::from(window));
        }
        ProbeEvent::PeerSuspected { peer, by }
        | ProbeEvent::PeerDead { peer, by }
        | ProbeEvent::PeerRejoined { peer, by } => {
            push_node(out, "peer", peer);
            push_node(out, "by", by);
        }
        ProbeEvent::Gauge { idle, queued, pending_events, peak_events } => {
            push_u64(out, "idle", idle);
            push_u64(out, "queued", queued);
            push_u64(out, "pending_events", pending_events);
            push_u64(out, "peak_events", peak_events);
        }
    }
    out.push('}');
}

/// Serializes a trace to JSONL (one header line, one line per entry,
/// trailing newline).
pub fn to_jsonl(trace: &Trace) -> String {
    // ~96 bytes per line is a comfortable overestimate; avoids rehashing
    // growth for big traces.
    let mut out = String::with_capacity(96 * (trace.entries.len() + 1));
    write_header(&mut out, trace);
    out.push('\n');
    for entry in &trace.entries {
        write_entry(&mut out, entry);
        out.push('\n');
    }
    out
}

// ---------------------------------------------------------------------
// Effect-audit export (DESIGN.md §13)
// ---------------------------------------------------------------------

/// Identifies an effect-audit export (the runtime half of
/// `cargo xtask effects`) in its header line.
pub const EFFECT_AUDIT_SCHEMA: &str = "aria-effect-audit";

/// Current effect-audit schema version.
pub const EFFECT_AUDIT_VERSION: u64 = 1;

/// The header line of an effect-audit JSONL export.
pub fn effect_audit_header(events: u64) -> String {
    format!(
        "{{\"schema\":\"{EFFECT_AUDIT_SCHEMA}\",\"version\":{EFFECT_AUDIT_VERSION},\
         \"events\":{events}}}"
    )
}

/// One effect-audit line: a handler and the effect classes it was
/// observed writing. Handler and class names are kebab-case idents, so
/// no JSON escaping is needed.
pub fn effect_audit_line(handler: &str, classes: &[&str]) -> String {
    let mut out = String::with_capacity(48 + 16 * classes.len());
    out.push_str("{\"handler\":\"");
    out.push_str(handler);
    out.push_str("\",\"writes\":[");
    for (i, class) in classes.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('"');
        out.push_str(class);
        out.push('"');
    }
    out.push_str("]}");
    out
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

/// A parsed JSON scalar. The schema is integer/bool/string-only by
/// design; floats are rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
enum JsonValue {
    Int(i64),
    Bool(bool),
    Str(String),
}

struct Cursor<'a> {
    bytes: &'a [u8],
    pos: usize,
    line: usize,
}

impl<'a> Cursor<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.pos += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ') | Some(b'\t')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), SchemaError> {
        self.skip_ws();
        match self.bump() {
            Some(b) if b == byte => Ok(()),
            other => Err(err(
                self.line,
                format!(
                    "expected '{}', found {}",
                    byte as char,
                    other.map_or("end of line".to_string(), |b| format!("'{}'", b as char))
                ),
            )),
        }
    }

    fn parse_string(&mut self) -> Result<String, SchemaError> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            match self.bump() {
                None => return Err(err(self.line, "unterminated string")),
                Some(b'"') => return Ok(s),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => s.push('"'),
                    Some(b'\\') => s.push('\\'),
                    Some(b'/') => s.push('/'),
                    Some(b'n') => s.push('\n'),
                    Some(b'r') => s.push('\r'),
                    Some(b't') => s.push('\t'),
                    Some(b'u') => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self
                                .bump()
                                .and_then(|b| (b as char).to_digit(16))
                                .ok_or_else(|| err(self.line, "bad \\u escape"))?;
                            code = code * 16 + d;
                        }
                        s.push(
                            char::from_u32(code)
                                .ok_or_else(|| err(self.line, "bad \\u code point"))?,
                        );
                    }
                    _ => return Err(err(self.line, "unsupported string escape")),
                },
                Some(b) if b < 0x20 => return Err(err(self.line, "raw control byte in string")),
                Some(b) => {
                    // Re-assemble UTF-8 multibyte sequences byte-wise.
                    if b < 0x80 {
                        s.push(b as char);
                    } else {
                        let start = self.pos - 1;
                        let width = match b {
                            0xC0..=0xDF => 2,
                            0xE0..=0xEF => 3,
                            0xF0..=0xF7 => 4,
                            _ => return Err(err(self.line, "invalid UTF-8 in string")),
                        };
                        let end = start + width;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .and_then(|c| std::str::from_utf8(c).ok())
                            .ok_or_else(|| err(self.line, "invalid UTF-8 in string"))?;
                        s.push_str(chunk);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn parse_value(&mut self) -> Result<JsonValue, SchemaError> {
        self.skip_ws();
        match self.peek() {
            Some(b'"') => Ok(JsonValue::Str(self.parse_string()?)),
            Some(b't') | Some(b'f') => {
                let word: &[u8] = if self.peek() == Some(b't') { b"true" } else { b"false" };
                if self.bytes[self.pos..].starts_with(word) {
                    self.pos += word.len();
                    Ok(JsonValue::Bool(word == b"true"))
                } else {
                    Err(err(self.line, "malformed boolean"))
                }
            }
            Some(b'-') | Some(b'0'..=b'9') => {
                let start = self.pos;
                if self.peek() == Some(b'-') {
                    self.pos += 1;
                }
                while matches!(self.peek(), Some(b'0'..=b'9')) {
                    self.pos += 1;
                }
                if matches!(self.peek(), Some(b'.') | Some(b'e') | Some(b'E')) {
                    return Err(err(self.line, "float values are not part of the schema"));
                }
                let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("digits");
                text.parse::<i64>()
                    .map(JsonValue::Int)
                    .map_err(|_| err(self.line, format!("integer out of range: {text}")))
            }
            _ => Err(err(self.line, "expected a string, integer or boolean value")),
        }
    }
}

/// Parses one flat JSON object line into its (key, value) pairs in file
/// order. Nested objects/arrays are rejected — the schema is flat.
fn parse_flat_object(line: &str, lineno: usize) -> Result<Vec<(String, JsonValue)>, SchemaError> {
    let mut cur = Cursor { bytes: line.as_bytes(), pos: 0, line: lineno };
    cur.expect(b'{')?;
    let mut fields = Vec::new();
    cur.skip_ws();
    if cur.peek() == Some(b'}') {
        cur.bump();
        return Ok(fields);
    }
    loop {
        cur.skip_ws();
        let key = cur.parse_string()?;
        cur.expect(b':')?;
        let value = cur.parse_value()?;
        fields.push((key, value));
        cur.skip_ws();
        match cur.bump() {
            Some(b',') => continue,
            Some(b'}') => break,
            _ => return Err(err(lineno, "expected ',' or '}'")),
        }
    }
    cur.skip_ws();
    if cur.peek().is_some() {
        return Err(err(lineno, "trailing bytes after object"));
    }
    Ok(fields)
}

struct Fields {
    line: usize,
    pairs: Vec<(String, JsonValue)>,
}

impl Fields {
    fn get(&self, key: &str) -> Option<&JsonValue> {
        self.pairs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    fn int(&self, key: &str) -> Result<i64, SchemaError> {
        match self.get(key) {
            Some(JsonValue::Int(v)) => Ok(*v),
            Some(_) => Err(err(self.line, format!("field \"{key}\" must be an integer"))),
            None => Err(err(self.line, format!("missing field \"{key}\""))),
        }
    }

    fn u64(&self, key: &str) -> Result<u64, SchemaError> {
        let v = self.int(key)?;
        u64::try_from(v).map_err(|_| err(self.line, format!("field \"{key}\" must be >= 0")))
    }

    fn u32(&self, key: &str) -> Result<u32, SchemaError> {
        let v = self.int(key)?;
        u32::try_from(v).map_err(|_| err(self.line, format!("field \"{key}\" out of u32 range")))
    }

    fn boolean(&self, key: &str) -> Result<bool, SchemaError> {
        match self.get(key) {
            Some(JsonValue::Bool(v)) => Ok(*v),
            Some(_) => Err(err(self.line, format!("field \"{key}\" must be a boolean"))),
            None => Err(err(self.line, format!("missing field \"{key}\""))),
        }
    }

    fn str(&self, key: &str) -> Result<&str, SchemaError> {
        match self.get(key) {
            Some(JsonValue::Str(v)) => Ok(v),
            Some(_) => Err(err(self.line, format!("field \"{key}\" must be a string"))),
            None => Err(err(self.line, format!("missing field \"{key}\""))),
        }
    }

    fn job(&self, key: &str) -> Result<JobId, SchemaError> {
        Ok(JobId::new(self.u64(key)?))
    }

    fn node(&self, key: &str) -> Result<NodeId, SchemaError> {
        Ok(NodeId::new(self.u32(key)?))
    }

    fn flood_kind(&self) -> Result<FloodKind, SchemaError> {
        match self.str("flood_kind")? {
            "request" => Ok(FloodKind::Request),
            "inform" => Ok(FloodKind::Inform),
            other => Err(err(self.line, format!("unknown flood_kind \"{other}\""))),
        }
    }

    fn msg_kind(&self) -> Result<MsgKind, SchemaError> {
        match self.str("msg_kind")? {
            "request" => Ok(MsgKind::Request),
            "accept" => Ok(MsgKind::Accept),
            "inform" => Ok(MsgKind::Inform),
            "assign" => Ok(MsgKind::Assign),
            "ack" => Ok(MsgKind::Ack),
            other => Err(err(self.line, format!("unknown msg_kind \"{other}\""))),
        }
    }
}

fn event_from_fields(f: &Fields) -> Result<ProbeEvent, SchemaError> {
    let kind = f.str("kind")?;
    Ok(match kind {
        "job-submitted" => {
            ProbeEvent::JobSubmitted { job: f.job("job")?, initiator: f.node("initiator")? }
        }
        "request-round" => ProbeEvent::RequestRound {
            job: f.job("job")?,
            initiator: f.node("initiator")?,
            round: f.u32("round")?,
            flood: f.u32("flood")?,
            seeds: f.u32("seeds")?,
        },
        "flood-hop" => ProbeEvent::FloodHop {
            kind: f.flood_kind()?,
            job: f.job("job")?,
            flood: f.u32("flood")?,
            node: f.node("node")?,
            hops_left: f.u32("hops_left")?,
            duplicate: f.boolean("duplicate")?,
        },
        "bid-sent" => ProbeEvent::BidSent {
            kind: f.flood_kind()?,
            job: f.job("job")?,
            from: f.node("from")?,
            to: f.node("to")?,
            cost_ms: f.int("cost_ms")?,
        },
        "offer-received" => ProbeEvent::OfferReceived {
            job: f.job("job")?,
            initiator: f.node("initiator")?,
            from: f.node("from")?,
            cost_ms: f.int("cost_ms")?,
            best: f.boolean("best")?,
        },
        "assigned" => ProbeEvent::Assigned {
            job: f.job("job")?,
            by: f.node("by")?,
            to: f.node("to")?,
            reschedule: f.boolean("reschedule")?,
        },
        "retry-scheduled" => ProbeEvent::RetryScheduled {
            job: f.job("job")?,
            initiator: f.node("initiator")?,
            round: f.u32("round")?,
        },
        "job-abandoned" => {
            ProbeEvent::JobAbandoned { job: f.job("job")?, initiator: f.node("initiator")? }
        }
        "enqueued" => ProbeEvent::Enqueued {
            job: f.job("job")?,
            node: f.node("node")?,
            depth: f.u32("depth")?,
        },
        "started" => ProbeEvent::Started { job: f.job("job")?, node: f.node("node")? },
        "completed" => ProbeEvent::Completed { job: f.job("job")?, node: f.node("node")? },
        "inform-round" => ProbeEvent::InformRound {
            job: f.job("job")?,
            node: f.node("node")?,
            flood: f.u32("flood")?,
            cost_ms: f.int("cost_ms")?,
        },
        "node-joined" => ProbeEvent::NodeJoined { node: f.node("node")? },
        "node-crashed" => {
            ProbeEvent::NodeCrashed { node: f.node("node")?, lost_jobs: f.u32("lost_jobs")? }
        }
        "recovery-started" => {
            ProbeEvent::RecoveryStarted { job: f.job("job")?, initiator: f.node("initiator")? }
        }
        "job-lost" => ProbeEvent::JobLost { job: f.job("job")? },
        "message-dropped" => ProbeEvent::MessageDropped {
            kind: f.msg_kind()?,
            job: f.job("job")?,
            to: f.node("to")?,
        },
        "assign-retransmit" => ProbeEvent::AssignRetransmit {
            job: f.job("job")?,
            to: f.node("to")?,
            attempt: f.u32("attempt")?,
        },
        "ack-received" => ProbeEvent::AckReceived { job: f.job("job")?, from: f.node("from")? },
        "duplicate-suppressed" => ProbeEvent::DuplicateSuppressed {
            kind: f.msg_kind()?,
            job: f.job("job")?,
            node: f.node("node")?,
        },
        "partition-started" => ProbeEvent::PartitionStarted { window: f.u32("window")? },
        "partition-healed" => ProbeEvent::PartitionHealed { window: f.u32("window")? },
        "peer-suspected" => {
            ProbeEvent::PeerSuspected { peer: f.node("peer")?, by: f.node("by")? }
        }
        "peer-dead" => ProbeEvent::PeerDead { peer: f.node("peer")?, by: f.node("by")? },
        "peer-rejoined" => ProbeEvent::PeerRejoined { peer: f.node("peer")?, by: f.node("by")? },
        "gauge" => ProbeEvent::Gauge {
            idle: f.u64("idle")?,
            queued: f.u64("queued")?,
            pending_events: f.u64("pending_events")?,
            peak_events: f.u64("peak_events")?,
        },
        other => return Err(err(f.line, format!("unknown event kind \"{other}\""))),
    })
}

/// Structural validation shared by the parser and in-memory producers:
/// strictly increasing `seq`, non-decreasing sim-time.
pub fn validate(trace: &Trace) -> Result<(), SchemaError> {
    let mut prev: Option<&TraceEntry> = None;
    for (i, entry) in trace.entries.iter().enumerate() {
        if let Some(p) = prev {
            if entry.seq <= p.seq {
                return Err(err(
                    i + 2, // 1-based, after the header line
                    format!("seq must be strictly increasing ({} after {})", entry.seq, p.seq),
                ));
            }
            if entry.at < p.at {
                return Err(err(
                    i + 2,
                    format!("sim-time went backwards ({} after {})", entry.at, p.at),
                ));
            }
        }
        prev = Some(entry);
    }
    Ok(())
}

/// Parses and validates a JSONL trace produced by [`to_jsonl`].
///
/// Unknown *fields* are ignored (additive schema evolution); unknown
/// *kinds* and version mismatches are errors.
pub fn from_jsonl(text: &str) -> Result<Trace, SchemaError> {
    let mut lines = text.lines().enumerate().filter(|(_, l)| !l.trim().is_empty());
    let (header_idx, header_line) =
        lines.next().ok_or_else(|| err(0, "empty trace: missing header line"))?;
    let header =
        Fields { line: header_idx + 1, pairs: parse_flat_object(header_line, header_idx + 1)? };
    let schema = header.str("schema")?;
    if schema != SCHEMA_NAME {
        return Err(err(header_idx + 1, format!("unknown schema \"{schema}\"")));
    }
    let version = header.u64("version")?;
    if !(1..=SCHEMA_VERSION).contains(&version) {
        return Err(err(
            header_idx + 1,
            format!("unsupported schema version {version} (reader supports 1..={SCHEMA_VERSION})"),
        ));
    }
    let meta = TraceMeta {
        scenario: header.str("scenario")?.to_string(),
        seed: header.u64("seed")?,
        nodes: header.u64("nodes")?,
        jobs: header.u64("jobs")?,
    };
    let declared_events = header.u64("events")?;
    let dropped = header.u64("dropped")?;

    let mut entries = Vec::new();
    for (idx, line) in lines {
        let lineno = idx + 1;
        let f = Fields { line: lineno, pairs: parse_flat_object(line, lineno)? };
        entries.push(TraceEntry {
            seq: f.u64("seq")?,
            at: SimTime::from_millis(f.u64("t_ms")?),
            event: event_from_fields(&f)?,
        });
    }
    if entries.len() as u64 != declared_events {
        return Err(err(
            0,
            format!("header declares {declared_events} events, file has {}", entries.len()),
        ));
    }
    let trace = Trace { meta, dropped, entries };
    validate(&trace)?;
    Ok(trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::FloodKind;

    fn sample_trace() -> Trace {
        let job = JobId::new(3);
        let n0 = NodeId::new(0);
        let n5 = NodeId::new(5);
        let entries = vec![
            TraceEntry {
                seq: 0,
                at: SimTime::from_secs(60),
                event: ProbeEvent::JobSubmitted { job, initiator: n0 },
            },
            TraceEntry {
                seq: 1,
                at: SimTime::from_secs(60),
                event: ProbeEvent::RequestRound { job, initiator: n0, round: 0, flood: 0, seeds: 4 },
            },
            TraceEntry {
                seq: 2,
                at: SimTime::from_millis(60_040),
                event: ProbeEvent::FloodHop {
                    kind: FloodKind::Request,
                    job,
                    flood: 0,
                    node: n5,
                    hops_left: 8,
                    duplicate: false,
                },
            },
            TraceEntry {
                seq: 3,
                at: SimTime::from_millis(60_080),
                event: ProbeEvent::BidSent {
                    kind: FloodKind::Request,
                    job,
                    from: n5,
                    to: n0,
                    cost_ms: -12_000,
                },
            },
            TraceEntry {
                seq: 4,
                at: SimTime::from_secs(90),
                event: ProbeEvent::Assigned { job, by: n0, to: n5, reschedule: false },
            },
            TraceEntry {
                seq: 5,
                at: SimTime::from_secs(91),
                event: ProbeEvent::Gauge { idle: 29, queued: 1, pending_events: 7, peak_events: 40 },
            },
        ];
        Trace {
            meta: TraceMeta { scenario: "iMixed".to_string(), seed: 11, nodes: 30, jobs: 15 },
            dropped: 0,
            entries,
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let trace = sample_trace();
        let text = to_jsonl(&trace);
        let back = from_jsonl(&text).expect("parse");
        assert_eq!(back, trace);
    }

    #[test]
    fn header_is_first_line_and_versioned() {
        let text = to_jsonl(&sample_trace());
        let header = text.lines().next().unwrap();
        assert!(header.starts_with("{\"schema\":\"aria-probe-trace\",\"version\":4,"));
        assert!(header.contains("\"scenario\":\"iMixed\""));
        assert!(header.contains("\"events\":6"));
    }

    #[test]
    fn v1_traces_still_validate() {
        // The sample trace only uses v1 kinds; a v1-stamped file of it
        // must keep parsing under the v4 reader.
        let text = to_jsonl(&sample_trace()).replace("\"version\":4", "\"version\":1");
        let back = from_jsonl(&text).expect("v1 trace rejected");
        assert_eq!(back, sample_trace());
    }

    #[test]
    fn v2_traces_still_validate() {
        // v3/v4 were additive; a v2-stamped trace (gauge values all
        // within u32, no membership kinds) must keep parsing under the
        // v4 reader.
        let text = to_jsonl(&sample_trace()).replace("\"version\":4", "\"version\":2");
        let back = from_jsonl(&text).expect("v2 trace rejected");
        assert_eq!(back, sample_trace());
    }

    #[test]
    fn v3_traces_still_validate() {
        // v4 only added membership kinds; a v3-stamped trace without
        // them must keep parsing under the v4 reader.
        let text = to_jsonl(&sample_trace()).replace("\"version\":4", "\"version\":3");
        let back = from_jsonl(&text).expect("v3 trace rejected");
        assert_eq!(back, sample_trace());
    }

    #[test]
    fn gauge_values_above_u32_survive() {
        // The v3 widening: gauges beyond u32::MAX round-trip exactly
        // instead of truncating (the 100k-node regime).
        let big = u64::from(u32::MAX) + 17;
        let entries = vec![TraceEntry {
            seq: 0,
            at: SimTime::from_secs(1),
            event: ProbeEvent::Gauge {
                idle: 100_000,
                queued: big,
                pending_events: big + 1,
                peak_events: big + 2,
            },
        }];
        let trace = Trace {
            meta: TraceMeta { scenario: "scale".to_string(), seed: 1, nodes: 100_000, jobs: 0 },
            dropped: 0,
            entries,
        };
        let back = from_jsonl(&to_jsonl(&trace)).expect("parse");
        assert_eq!(back, trace);
    }

    #[test]
    fn v2_fault_kinds_roundtrip() {
        let job = JobId::new(3);
        let entries = vec![
            TraceEntry {
                seq: 0,
                at: SimTime::from_secs(10),
                event: ProbeEvent::PartitionStarted { window: 0 },
            },
            TraceEntry {
                seq: 1,
                at: SimTime::from_secs(11),
                event: ProbeEvent::MessageDropped { kind: MsgKind::Ack, job, to: NodeId::new(4) },
            },
            TraceEntry {
                seq: 2,
                at: SimTime::from_secs(12),
                event: ProbeEvent::AssignRetransmit { job, to: NodeId::new(4), attempt: 1 },
            },
            TraceEntry {
                seq: 3,
                at: SimTime::from_secs(13),
                event: ProbeEvent::DuplicateSuppressed {
                    kind: MsgKind::Assign,
                    job,
                    node: NodeId::new(4),
                },
            },
            TraceEntry {
                seq: 4,
                at: SimTime::from_secs(14),
                event: ProbeEvent::AckReceived { job, from: NodeId::new(4) },
            },
            TraceEntry {
                seq: 5,
                at: SimTime::from_secs(15),
                event: ProbeEvent::PartitionHealed { window: 0 },
            },
        ];
        let trace = Trace {
            meta: TraceMeta { scenario: "chaos".to_string(), seed: 7, nodes: 10, jobs: 1 },
            dropped: 0,
            entries,
        };
        let back = from_jsonl(&to_jsonl(&trace)).expect("parse");
        assert_eq!(back, trace);
    }

    #[test]
    fn v4_membership_kinds_roundtrip() {
        let peer = NodeId::new(3);
        let by = NodeId::new(1);
        let entries = vec![
            TraceEntry {
                seq: 0,
                at: SimTime::from_secs(5),
                event: ProbeEvent::PeerSuspected { peer, by },
            },
            TraceEntry {
                seq: 1,
                at: SimTime::from_secs(9),
                event: ProbeEvent::PeerDead { peer, by },
            },
            TraceEntry {
                seq: 2,
                at: SimTime::from_secs(30),
                event: ProbeEvent::PeerRejoined { peer, by },
            },
        ];
        let trace = Trace {
            meta: TraceMeta { scenario: "churn".to_string(), seed: 7, nodes: 5, jobs: 0 },
            dropped: 0,
            entries,
        };
        let back = from_jsonl(&to_jsonl(&trace)).expect("parse");
        assert_eq!(back, trace);
    }

    #[test]
    fn streaming_lines_match_to_jsonl() {
        // The live runtime writes header_line + entry_line incrementally;
        // the result must be byte-identical to a one-shot to_jsonl dump.
        let trace = sample_trace();
        let mut streamed =
            header_line(&trace.meta, trace.entries.len() as u64, trace.dropped);
        streamed.push('\n');
        for entry in &trace.entries {
            streamed.push_str(&entry_line(entry));
            streamed.push('\n');
        }
        assert_eq!(streamed, to_jsonl(&trace));
    }

    #[test]
    fn negative_costs_survive() {
        let trace = sample_trace();
        let back = from_jsonl(&to_jsonl(&trace)).unwrap();
        match back.entries[3].event {
            ProbeEvent::BidSent { cost_ms, .. } => assert_eq!(cost_ms, -12_000),
            ref other => panic!("unexpected event {other:?}"),
        }
    }

    #[test]
    fn version_mismatch_is_rejected() {
        // Future versions are rejected (the reader will not guess)...
        let text = to_jsonl(&sample_trace()).replace("\"version\":4", "\"version\":99");
        let e = from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("unsupported schema version"), "{e}");
        // ...and so is the nonsense version 0.
        let text = to_jsonl(&sample_trace()).replace("\"version\":4", "\"version\":0");
        let e = from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("unsupported schema version"), "{e}");
    }

    #[test]
    fn unknown_kind_is_rejected() {
        let text = to_jsonl(&sample_trace()).replace("\"kind\":\"gauge\"", "\"kind\":\"mystery\"");
        let e = from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("unknown event kind"), "{e}");
    }

    #[test]
    fn missing_field_is_rejected_with_line_number() {
        let text = to_jsonl(&sample_trace()).replace(",\"initiator\":0,\"round\":0", ",\"round\":0");
        let e = from_jsonl(&text).unwrap_err();
        assert_eq!(e.line, 3);
        assert!(e.message.contains("missing field \"initiator\""), "{e}");
    }

    #[test]
    fn unknown_fields_are_ignored() {
        let text = to_jsonl(&sample_trace())
            .replace("\"kind\":\"gauge\"", "\"kind\":\"gauge\",\"future_field\":\"ok\"");
        assert!(from_jsonl(&text).is_ok());
    }

    #[test]
    fn floats_are_rejected() {
        let text = to_jsonl(&sample_trace()).replace("\"idle\":29", "\"idle\":29.5");
        let e = from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("float"), "{e}");
    }

    #[test]
    fn non_monotonic_seq_is_rejected() {
        let mut trace = sample_trace();
        trace.entries[3].seq = 1;
        let e = validate(&trace).unwrap_err();
        assert!(e.message.contains("strictly increasing"), "{e}");
    }

    #[test]
    fn event_count_mismatch_is_rejected() {
        let mut text = to_jsonl(&sample_trace());
        text.push('\n');
        let text = text.replace("\"events\":6", "\"events\":7");
        let e = from_jsonl(&text).unwrap_err();
        assert!(e.message.contains("declares 7 events"), "{e}");
    }

    #[test]
    fn string_escapes_roundtrip() {
        let mut trace = sample_trace();
        trace.meta.scenario = "odd \"name\"\twith\\stuff\u{1}".to_string();
        let back = from_jsonl(&to_jsonl(&trace)).unwrap();
        assert_eq!(back.meta.scenario, trace.meta.scenario);
    }
}
