//! Derived views over a recorded [`Trace`]: per-job causal lifecycle
//! timelines, per-node utilization/queue-depth histograms, and flood
//! fan-out / offers-per-request counters.
//!
//! All views iterate the trace in record order and aggregate into
//! `BTreeMap`s, so rendering is deterministic for a given trace.

use crate::event::{FloodKind, ProbeEvent};
use crate::record::{Trace, TraceEntry};
use aria_grid::JobId;
use aria_overlay::NodeId;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt::Write as _;

/// All job ids mentioned anywhere in the trace, ascending.
pub fn job_ids(trace: &Trace) -> BTreeSet<JobId> {
    trace.entries.iter().filter_map(|e| e.event.job()).collect()
}

/// The entries concerning one job, in record order.
pub fn job_timeline(trace: &Trace, job: JobId) -> Vec<&TraceEntry> {
    trace.entries.iter().filter(|e| e.event.job() == Some(job)).collect()
}

/// Renders a job's causal timeline as indented human-readable lines.
pub fn render_timeline(trace: &Trace, job: JobId) -> String {
    let entries = job_timeline(trace, job);
    let mut out = String::new();
    let _ = writeln!(out, "timeline for {job} ({} events):", entries.len());
    for e in entries {
        let _ = writeln!(out, "  [{:>10}] #{:<6} {}", e.at.to_string(), e.seq, e.event);
    }
    out
}

/// The terminal-state summary of one job's recorded lifecycle.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Lifecycle {
    /// A `job-submitted` event was seen.
    pub submitted: bool,
    /// Number of `assigned` events (initial + steals).
    pub assignments: u32,
    /// Number of `assigned` events with `reschedule=true`.
    pub reschedules: u32,
    /// An execution start was seen.
    pub started: bool,
    /// The job ran to completion.
    pub completed: bool,
    /// The initiator abandoned the job.
    pub abandoned: bool,
    /// The job was lost to a crash.
    pub lost: bool,
    /// Number of failsafe recoveries.
    pub recoveries: u32,
}

impl Lifecycle {
    /// Whether the recorded lifecycle runs from submission to a terminal
    /// state (complete, abandoned, or lost).
    pub fn is_complete(&self) -> bool {
        self.submitted && (self.completed || self.abandoned || self.lost)
    }
}

/// Folds the trace into per-job lifecycle summaries, keyed ascending.
pub fn lifecycles(trace: &Trace) -> BTreeMap<JobId, Lifecycle> {
    let mut map: BTreeMap<JobId, Lifecycle> = BTreeMap::new();
    for entry in &trace.entries {
        let Some(job) = entry.event.job() else { continue };
        let lc = map.entry(job).or_default();
        match entry.event {
            ProbeEvent::JobSubmitted { .. } => lc.submitted = true,
            ProbeEvent::Assigned { reschedule, .. } => {
                lc.assignments += 1;
                if reschedule {
                    lc.reschedules += 1;
                }
            }
            ProbeEvent::Started { .. } => lc.started = true,
            ProbeEvent::Completed { .. } => lc.completed = true,
            ProbeEvent::JobAbandoned { .. } => lc.abandoned = true,
            ProbeEvent::JobLost { .. } => lc.lost = true,
            ProbeEvent::RecoveryStarted { .. } => lc.recoveries += 1,
            _ => {}
        }
    }
    map
}

/// Per-node activity counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NodeActivity {
    /// Jobs started on this node.
    pub starts: u64,
    /// Jobs completed on this node.
    pub completions: u64,
    /// Flood hops that arrived here (duplicates included).
    pub flood_hops: u64,
    /// ACCEPT offers sent from here.
    pub bids: u64,
    /// Deepest waiting queue observed at enqueue time.
    pub peak_queue_depth: u32,
}

/// Aggregate counters over a whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TraceSummary {
    /// Entries retained in the trace.
    pub events: u64,
    /// Entries the bounded ring evicted before export.
    pub dropped: u64,
    /// Event count per schema kind.
    pub by_kind: BTreeMap<&'static str, u64>,
    /// REQUEST rounds opened (a job retry opens a new round).
    pub request_rounds: u64,
    /// Non-duplicate REQUEST flood hops.
    pub request_hops: u64,
    /// REQUEST flood hops discarded as duplicates.
    pub duplicate_request_hops: u64,
    /// INFORM advertisements flooded.
    pub inform_rounds: u64,
    /// Non-duplicate INFORM flood hops.
    pub inform_hops: u64,
    /// ACCEPT offers collected inside open windows.
    pub offers: u64,
    /// Enqueue-time waiting-depth histogram (depth → occurrences).
    pub queue_depth_histogram: BTreeMap<u32, u64>,
    /// Per-node activity, keyed ascending.
    pub per_node: BTreeMap<NodeId, NodeActivity>,
}

impl TraceSummary {
    /// Average non-duplicate REQUEST hops per REQUEST round — the flood
    /// fan-out actually achieved.
    pub fn hops_per_request(&self) -> f64 {
        self.request_hops as f64 / (self.request_rounds.max(1)) as f64
    }

    /// Average in-window offers collected per REQUEST round.
    pub fn offers_per_request(&self) -> f64 {
        self.offers as f64 / (self.request_rounds.max(1)) as f64
    }

    /// Renders the summary as human-readable lines.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{} events ({} evicted by ring)", self.events, self.dropped);
        let _ = writeln!(out, "by kind:");
        for (kind, count) in &self.by_kind {
            let _ = writeln!(out, "  {kind:<18} {count}");
        }
        let _ = writeln!(
            out,
            "flood: {} REQUEST rounds, {:.2} hops/request ({} duplicate), {:.2} offers/request",
            self.request_rounds,
            self.hops_per_request(),
            self.duplicate_request_hops,
            self.offers_per_request(),
        );
        let _ =
            writeln!(out, "inform: {} rounds, {} non-duplicate hops", self.inform_rounds, self.inform_hops);
        if !self.queue_depth_histogram.is_empty() {
            let _ = writeln!(out, "enqueue depth histogram:");
            for (depth, count) in &self.queue_depth_histogram {
                let _ = writeln!(out, "  depth {depth:>3}: {count}");
            }
        }
        let busiest = self.per_node.iter().max_by_key(|(id, a)| (a.starts, std::cmp::Reverse(*id)));
        if let Some((node, activity)) = busiest {
            let _ = writeln!(
                out,
                "busiest node: {node} ({} starts, {} completions, peak queue depth {})",
                activity.starts, activity.completions, activity.peak_queue_depth
            );
        }
        out
    }
}

/// Folds a trace into [`TraceSummary`] counters.
pub fn summarize(trace: &Trace) -> TraceSummary {
    let mut s = TraceSummary { events: trace.entries.len() as u64, dropped: trace.dropped, ..Default::default() };
    for entry in &trace.entries {
        *s.by_kind.entry(entry.event.kind()).or_default() += 1;
        match entry.event {
            ProbeEvent::RequestRound { .. } => s.request_rounds += 1,
            ProbeEvent::InformRound { .. } => s.inform_rounds += 1,
            ProbeEvent::OfferReceived { .. } => s.offers += 1,
            ProbeEvent::FloodHop { kind, node, duplicate, .. } => {
                match (kind, duplicate) {
                    (FloodKind::Request, false) => s.request_hops += 1,
                    (FloodKind::Request, true) => s.duplicate_request_hops += 1,
                    (FloodKind::Inform, false) => s.inform_hops += 1,
                    (FloodKind::Inform, true) => {}
                }
                s.per_node.entry(node).or_default().flood_hops += 1;
            }
            ProbeEvent::BidSent { from, .. } => s.per_node.entry(from).or_default().bids += 1,
            ProbeEvent::Enqueued { node, depth, .. } => {
                *s.queue_depth_histogram.entry(depth).or_default() += 1;
                let a = s.per_node.entry(node).or_default();
                a.peak_queue_depth = a.peak_queue_depth.max(depth);
            }
            ProbeEvent::Started { node, .. } => s.per_node.entry(node).or_default().starts += 1,
            ProbeEvent::Completed { node, .. } => {
                s.per_node.entry(node).or_default().completions += 1
            }
            _ => {}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::TraceMeta;
    use aria_sim::SimTime;

    fn entry(seq: u64, secs: u64, event: ProbeEvent) -> TraceEntry {
        TraceEntry { seq, at: SimTime::from_secs(secs), event }
    }

    fn sample() -> Trace {
        let job = JobId::new(1);
        let n0 = NodeId::new(0);
        let n1 = NodeId::new(1);
        Trace {
            meta: TraceMeta::default(),
            dropped: 0,
            entries: vec![
                entry(0, 1, ProbeEvent::JobSubmitted { job, initiator: n0 }),
                entry(1, 1, ProbeEvent::RequestRound { job, initiator: n0, round: 0, flood: 0, seeds: 2 }),
                entry(
                    2,
                    2,
                    ProbeEvent::FloodHop {
                        kind: FloodKind::Request,
                        job,
                        flood: 0,
                        node: n1,
                        hops_left: 7,
                        duplicate: false,
                    },
                ),
                entry(
                    3,
                    2,
                    ProbeEvent::OfferReceived { job, initiator: n0, from: n1, cost_ms: 100, best: true },
                ),
                entry(4, 3, ProbeEvent::Assigned { job, by: n0, to: n1, reschedule: false }),
                entry(5, 3, ProbeEvent::Enqueued { job, node: n1, depth: 1 }),
                entry(6, 4, ProbeEvent::Started { job, node: n1 }),
                entry(7, 9, ProbeEvent::Completed { job, node: n1 }),
            ],
        }
    }

    #[test]
    fn lifecycle_is_complete_for_finished_job() {
        let lcs = lifecycles(&sample());
        let lc = lcs[&JobId::new(1)];
        assert!(lc.submitted && lc.started && lc.completed);
        assert!(lc.is_complete());
        assert_eq!(lc.assignments, 1);
        assert_eq!(lc.reschedules, 0);
    }

    #[test]
    fn incomplete_lifecycle_is_flagged() {
        let mut t = sample();
        t.entries.truncate(6); // chop start + completion
        let lc = lifecycles(&t)[&JobId::new(1)];
        assert!(!lc.is_complete());
    }

    #[test]
    fn summary_counts_floods_and_offers() {
        let s = summarize(&sample());
        assert_eq!(s.events, 8);
        assert_eq!(s.request_rounds, 1);
        assert_eq!(s.request_hops, 1);
        assert_eq!(s.offers, 1);
        assert_eq!(s.offers_per_request(), 1.0);
        assert_eq!(s.by_kind["assigned"], 1);
        let n1 = &s.per_node[&NodeId::new(1)];
        assert_eq!(n1.starts, 1);
        assert_eq!(n1.completions, 1);
        assert_eq!(n1.peak_queue_depth, 1);
        assert_eq!(s.queue_depth_histogram[&1], 1);
    }

    #[test]
    fn timeline_filters_by_job() {
        let t = sample();
        assert_eq!(job_timeline(&t, JobId::new(1)).len(), 8);
        assert!(job_timeline(&t, JobId::new(2)).is_empty());
        let rendered = render_timeline(&t, JobId::new(1));
        assert!(rendered.contains("submitted"), "{rendered}");
        assert!(rendered.contains("completed"), "{rendered}");
    }
}
