//! Property-based tests for workload generation: distribution clamps,
//! feasibility and the ART error models.

use aria_sim::{SimDuration, SimRng, SimTime};
use aria_workload::{
    ArtModel, ClampedNormal, JobGenerator, JobGeneratorConfig, ProfileGenerator,
    SubmissionSchedule,
};
use proptest::prelude::*;

proptest! {
    /// Clamped normals always respect their bounds, for arbitrary
    /// parameters (including degenerate std-dev and mean outside the
    /// clamp window).
    #[test]
    fn clamped_normal_respects_bounds(
        seed in any::<u64>(),
        mean_mins in 0u64..600,
        std_mins in 0u64..300,
        lo_mins in 0u64..200,
        width_mins in 0u64..400,
    ) {
        let dist = ClampedNormal::new(
            SimDuration::from_mins(mean_mins),
            SimDuration::from_mins(std_mins),
            SimDuration::from_mins(lo_mins),
            SimDuration::from_mins(lo_mins + width_mins),
        );
        let mut rng = SimRng::seed_from(seed);
        for _ in 0..100 {
            let sample = dist.sample(&mut rng);
            prop_assert!(sample >= SimDuration::from_mins(lo_mins));
            prop_assert!(sample <= SimDuration::from_mins(lo_mins + width_mins));
        }
    }

    /// Every generated job respects the paper's ERT window, and deadline
    /// jobs are never due before they could possibly finish.
    #[test]
    fn generated_jobs_are_well_formed(
        seed in any::<u64>(),
        submit_mins in 0u64..10_000,
        deadline in any::<bool>(),
    ) {
        let config = if deadline {
            JobGeneratorConfig::paper_deadline()
        } else {
            JobGeneratorConfig::paper_batch()
        };
        let mut generator = JobGenerator::new(config);
        let mut rng = SimRng::seed_from(seed);
        let submit = SimTime::from_mins(submit_mins);
        for _ in 0..50 {
            let job = generator.generate(submit, &mut rng);
            prop_assert!(job.ert >= SimDuration::from_hours(1));
            prop_assert!(job.ert <= SimDuration::from_hours(4));
            match job.deadline {
                Some(d) => prop_assert!(d >= submit + job.ert),
                None => prop_assert!(!deadline),
            }
        }
    }

    /// Feasibility resampling always yields a job matched by some node of
    /// a non-trivial grid.
    #[test]
    fn feasible_jobs_match_the_grid(seed in any::<u64>(), grid_size in 5usize..80) {
        let mut rng = SimRng::seed_from(seed);
        let grid = ProfileGenerator::paper().generate_many(grid_size, &mut rng);
        let mut generator = JobGenerator::paper_batch();
        for _ in 0..30 {
            let job = generator.generate_feasible(SimTime::ZERO, &grid, &mut rng);
            prop_assert!(grid.iter().any(|p| job.requirements.matches(p)));
        }
    }

    /// ART models: symmetric drift bounded by ε·ERT, optimistic never
    /// faster than the estimate, exact is exact.
    #[test]
    fn art_models_respect_their_contracts(
        seed in any::<u64>(),
        ert_mins in 60u64..240,
        perf in 1.0f64..2.0,
        epsilon in 0.0f64..0.5,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let ert = SimDuration::from_mins(ert_mins);
        let ertp = ert.div_f64(perf);
        let exact = ArtModel::Exact.actual_running_time(ert, ertp, &mut rng);
        prop_assert_eq!(exact, ertp.max(SimDuration::from_secs(1)));

        let symmetric = ArtModel::Symmetric { epsilon };
        for _ in 0..20 {
            let art = symmetric.actual_running_time(ert, ertp, &mut rng);
            let drift = art.as_millis() as i64 - ertp.as_millis() as i64;
            // det:allow(lossy-float-cast): test bound, +1 below absorbs the truncation
            let bound = (ert.as_millis() as f64 * epsilon) as i64 + ertp.as_millis() as i64;
            prop_assert!(drift.abs() <= bound + 1);
        }

        let optimistic = ArtModel::Optimistic { epsilon };
        for _ in 0..20 {
            let art = optimistic.actual_running_time(ert, ertp, &mut rng);
            prop_assert!(art >= ertp.min(art)); // never panics; and...
            prop_assert!(art.as_millis() + 1 >= ertp.as_millis().min(art.as_millis()));
            prop_assert!(art >= ertp || art == SimDuration::from_secs(1).max(art));
            prop_assert!(art >= ertp, "optimistic ART {art} < estimate {ertp}");
        }
    }

    /// Submission schedules are arithmetic progressions with exactly
    /// `count` strictly increasing instants.
    #[test]
    fn schedules_are_arithmetic(
        start_mins in 0u64..100,
        interval_secs in 1u64..120,
        count in 1usize..500,
    ) {
        let schedule = SubmissionSchedule::new(
            SimTime::from_mins(start_mins),
            SimDuration::from_secs(interval_secs),
            count,
        );
        let times: Vec<SimTime> = schedule.times().collect();
        prop_assert_eq!(times.len(), count);
        prop_assert_eq!(times[0], SimTime::from_mins(start_mins));
        for pair in times.windows(2) {
            prop_assert_eq!(
                pair[1].saturating_since(pair[0]),
                SimDuration::from_secs(interval_secs)
            );
        }
        prop_assert_eq!(*times.last().unwrap(), schedule.last_time());
    }

    /// Job ids keep incrementing across mixed generate calls.
    #[test]
    fn job_ids_never_repeat(seed in any::<u64>(), n in 1usize..100) {
        let mut rng = SimRng::seed_from(seed);
        let grid = ProfileGenerator::paper().generate_many(10, &mut rng);
        let mut generator = JobGenerator::paper_batch();
        let mut ids = std::collections::BTreeSet::new();
        for i in 0..n {
            let job = if i % 2 == 0 {
                generator.generate(SimTime::ZERO, &mut rng)
            } else {
                generator.generate_feasible(SimTime::ZERO, &grid, &mut rng)
            };
            prop_assert!(ids.insert(job.id), "duplicate id {}", job.id);
        }
    }
}
