//! Actual Running Time (ART) error models (§IV-E).
//!
//! The meta-scheduler only ever sees the *estimate* (ERT); the simulator
//! derives the true execution time as
//!
//! ```text
//! ART(j, ε) = ERTp(j) + drift(j, ε),    drift = U[-1, 1] · ERT(j) · ε
//! ```
//!
//! with the *optimistic* variant replacing `drift` by `|drift|` (the
//! estimate is then always lower than reality, *AccuracyBad*).

use aria_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// How the Actual Running Time deviates from the estimate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArtModel {
    /// The estimate is perfect (`ε = 0`; *Precise* scenarios).
    Exact,
    /// Symmetric relative error: `drift = U[-1,1] · ERT · ε`
    /// (baseline `ε = 0.1`, *Accuracy25* uses `ε = 0.25`).
    Symmetric {
        /// Relative error bound `ε`.
        epsilon: f64,
    },
    /// Optimistic estimation: the ERT is always lower than reality
    /// (`drift = |U[-1,1] · ERT · ε|`; *AccuracyBad*).
    Optimistic {
        /// Relative error bound `ε`.
        epsilon: f64,
    },
}

impl ArtModel {
    /// The paper's baseline model: symmetric ±10 %.
    pub fn paper_baseline() -> Self {
        ArtModel::Symmetric { epsilon: 0.1 }
    }

    /// Samples the actual running time of a job with baseline estimate
    /// `ert` and node-scaled estimate `ertp`.
    ///
    /// The result never goes below one simulated second: even a wildly
    /// overestimated job takes *some* time to run.
    pub fn actual_running_time(
        &self,
        ert: SimDuration,
        ertp: SimDuration,
        rng: &mut SimRng,
    ) -> SimDuration {
        let drift_ms = |epsilon: f64, rng: &mut SimRng| {
            rng.f64_range(-1.0, 1.0) * ert.as_millis() as f64 * epsilon
        };
        let art_ms = match *self {
            ArtModel::Exact => ertp.as_millis() as f64,
            ArtModel::Symmetric { epsilon } => ertp.as_millis() as f64 + drift_ms(epsilon, rng),
            ArtModel::Optimistic { epsilon } => {
                ertp.as_millis() as f64 + drift_ms(epsilon, rng).abs()
            }
        };
        // det:allow(lossy-float-cast): rounded and clamped to >= 1s before truncation
        SimDuration::from_millis(art_ms.round().max(1000.0) as u64)
    }
}

impl Default for ArtModel {
    fn default() -> Self {
        ArtModel::paper_baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ERT: SimDuration = SimDuration::from_hours(2);
    const ERTP: SimDuration = SimDuration::from_mins(90);

    #[test]
    fn exact_model_returns_ertp() {
        let mut rng = SimRng::seed_from(1);
        let art = ArtModel::Exact.actual_running_time(ERT, ERTP, &mut rng);
        assert_eq!(art, ERTP);
    }

    #[test]
    fn symmetric_drift_is_bounded_by_epsilon_of_ert() {
        let mut rng = SimRng::seed_from(2);
        let model = ArtModel::Symmetric { epsilon: 0.1 };
        for _ in 0..5000 {
            let art = model.actual_running_time(ERT, ERTP, &mut rng);
            let drift = art.as_millis() as i64 - ERTP.as_millis() as i64;
            // det:allow(lossy-float-cast): test bound, +1 absorbs the truncation
            assert!(drift.unsigned_abs() <= (ERT.as_millis() as f64 * 0.1) as u64 + 1);
        }
    }

    #[test]
    fn symmetric_drift_is_roughly_centered() {
        let mut rng = SimRng::seed_from(3);
        let model = ArtModel::Symmetric { epsilon: 0.25 };
        let n = 20_000;
        let mean_drift: f64 = (0..n)
            .map(|_| {
                model.actual_running_time(ERT, ERTP, &mut rng).as_millis() as f64
                    - ERTP.as_millis() as f64
            })
            .sum::<f64>()
            / n as f64;
        // drift spans ±30min of ERT*0.25; the mean should sit near zero.
        assert!(mean_drift.abs() < 30_000.0, "mean drift {mean_drift}ms");
    }

    #[test]
    fn optimistic_never_finishes_early() {
        let mut rng = SimRng::seed_from(4);
        let model = ArtModel::Optimistic { epsilon: 0.1 };
        for _ in 0..5000 {
            let art = model.actual_running_time(ERT, ERTP, &mut rng);
            assert!(art >= ERTP, "optimistic ART {art} below estimate {ERTP}");
        }
    }

    #[test]
    fn art_never_below_one_second() {
        let mut rng = SimRng::seed_from(5);
        let tiny = SimDuration::from_millis(10);
        let model = ArtModel::Symmetric { epsilon: 1.0 };
        for _ in 0..100 {
            let art = model.actual_running_time(SimDuration::from_hours(4), tiny, &mut rng);
            assert!(art >= SimDuration::from_secs(1));
        }
    }

    #[test]
    fn default_is_paper_baseline() {
        assert_eq!(ArtModel::default(), ArtModel::Symmetric { epsilon: 0.1 });
    }
}
