//! Fixed-rate job submission schedules (§IV-E).

use aria_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// A fixed-interval submission process: `count` jobs, the first at
/// `start`, one every `interval` after that.
///
/// The paper's baseline submits 1000 jobs every 10 s starting 20 minutes
/// into the simulation (ending at 3h07m); the low-load variant halves
/// the rate, the high-load variant doubles it.
///
/// # Example
///
/// ```
/// use aria_workload::SubmissionSchedule;
/// use aria_sim::SimTime;
///
/// let schedule = SubmissionSchedule::paper_baseline();
/// assert_eq!(schedule.count(), 1000);
/// assert_eq!(schedule.time_of(0), SimTime::from_mins(20));
/// // Last submission: 20m + 999 * 10s  ≈ 3h06m30s.
/// assert_eq!(schedule.last_time().as_secs(), 20 * 60 + 999 * 10);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SubmissionSchedule {
    start: SimTime,
    interval: SimDuration,
    count: usize,
}

impl SubmissionSchedule {
    /// Creates a schedule.
    ///
    /// # Panics
    ///
    /// Panics if `count > 1` and `interval` is zero.
    pub fn new(start: SimTime, interval: SimDuration, count: usize) -> Self {
        assert!(count <= 1 || !interval.is_zero(), "interval must be positive");
        SubmissionSchedule { start, interval, count }
    }

    /// The paper's baseline: 1000 jobs, one every 10 s, from t = 20 min.
    pub fn paper_baseline() -> Self {
        SubmissionSchedule::new(SimTime::from_mins(20), SimDuration::from_secs(10), 1000)
    }

    /// The *LowLoad* schedule: rate halved (one job every 20 s).
    pub fn paper_low_load() -> Self {
        SubmissionSchedule::new(SimTime::from_mins(20), SimDuration::from_secs(20), 1000)
    }

    /// The *HighLoad* schedule: rate doubled (one job every 5 s).
    pub fn paper_high_load() -> Self {
        SubmissionSchedule::new(SimTime::from_mins(20), SimDuration::from_secs(5), 1000)
    }

    /// First submission instant.
    pub fn start(&self) -> SimTime {
        self.start
    }

    /// Interval between submissions.
    pub fn interval(&self) -> SimDuration {
        self.interval
    }

    /// Total number of submissions.
    pub fn count(&self) -> usize {
        self.count
    }

    /// Instant of the `i`-th submission.
    ///
    /// # Panics
    ///
    /// Panics if `i >= count`.
    pub fn time_of(&self, i: usize) -> SimTime {
        assert!(i < self.count, "submission index out of range");
        self.start + self.interval * i as u64
    }

    /// Instant of the final submission.
    ///
    /// # Panics
    ///
    /// Panics if the schedule is empty.
    pub fn last_time(&self) -> SimTime {
        self.time_of(self.count - 1)
    }

    /// Iterator over all submission instants.
    pub fn times(&self) -> impl Iterator<Item = SimTime> + '_ {
        (0..self.count).map(|i| self.time_of(i))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_matches_paper_window() {
        let s = SubmissionSchedule::paper_baseline();
        assert_eq!(s.time_of(0), SimTime::from_mins(20));
        // The paper quotes submissions running "up to 3h 7m".
        let last = s.last_time();
        assert!(last <= SimTime::from_mins(3 * 60 + 7));
        assert!(last > SimTime::from_mins(3 * 60 + 6));
    }

    #[test]
    fn low_load_ends_near_5h54() {
        let s = SubmissionSchedule::paper_low_load();
        let last = s.last_time();
        assert!(last <= SimTime::from_mins(5 * 60 + 54));
        assert!(last > SimTime::from_mins(5 * 60 + 52));
    }

    #[test]
    fn high_load_ends_near_1h45() {
        let s = SubmissionSchedule::paper_high_load();
        let last = s.last_time();
        assert!(last <= SimTime::from_mins(60 + 45));
        assert!(last > SimTime::from_mins(60 + 43));
    }

    #[test]
    fn times_iterator_is_complete_and_ordered() {
        let s = SubmissionSchedule::new(SimTime::ZERO, SimDuration::from_secs(1), 5);
        let times: Vec<u64> = s.times().map(|t| t.as_secs()).collect();
        assert_eq!(times, [0, 1, 2, 3, 4]);
    }

    #[test]
    fn single_job_schedule_allows_zero_interval() {
        let s = SubmissionSchedule::new(SimTime::from_secs(9), SimDuration::ZERO, 1);
        assert_eq!(s.last_time(), SimTime::from_secs(9));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_index_panics() {
        SubmissionSchedule::paper_baseline().time_of(1000);
    }
}
