//! # aria-workload — synthetic grid workload and node-profile generation
//!
//! Implements the randomized evaluation inputs of the ARiA paper (§IV):
//!
//! * [`ProfileGenerator`] — heterogeneous node profiles following the
//!   TOP500-derived architecture/OS distributions, uniform memory/disk in
//!   {1, 2, 4, 8, 16} GB and performance index `p ~ U[1, 2]`.
//! * [`JobGenerator`] — jobs whose requirements follow the same
//!   distributions as node profiles and whose ERT follows a clamped
//!   normal `N(2h30m, 1h15m)` bounded to `[1h, 4h]`; optional deadlines
//!   at `submit + ERT + slack`.
//! * [`SubmissionSchedule`] — the fixed-rate submission processes of the
//!   scenarios (1 job / 10 s baseline, halved and doubled for the
//!   low/high-load scenarios).
//! * [`ArtModel`] — the Actual Running Time error models of §IV-E
//!   (`ART = ERTp + drift`, `drift = U[-1,1] · ERT · ε`, with the
//!   *optimistic* variant that only underestimates).
//!
//! ## Example
//!
//! ```
//! use aria_workload::{JobGenerator, ProfileGenerator};
//! use aria_sim::{SimRng, SimTime, SimDuration};
//!
//! let mut rng = SimRng::seed_from(7);
//! let profiles: Vec<_> = (0..10).map(|_| ProfileGenerator::paper().generate(&mut rng)).collect();
//! let mut jobs = JobGenerator::paper_batch();
//! let job = jobs.generate(SimTime::from_mins(20), &mut rng);
//! assert!(job.ert >= SimDuration::from_hours(1) && job.ert <= SimDuration::from_hours(4));
//! # let _ = profiles;
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod accuracy;
pub mod distributions;
pub mod jobs;
pub mod profiles;
pub mod schedule;

pub use accuracy::ArtModel;
pub use distributions::{CapacityDistribution, CategoricalField, ClampedNormal};
pub use jobs::{JobGenerator, JobGeneratorConfig};
pub use profiles::ProfileGenerator;
pub use schedule::SubmissionSchedule;
