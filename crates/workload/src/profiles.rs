//! Random node-profile generation (§IV-B).

use crate::distributions::{CapacityDistribution, CategoricalField};
use aria_grid::{NodeProfile, PerfIndex};
use aria_sim::SimRng;
use serde::{Deserialize, Serialize};

/// Generates heterogeneous node profiles with the paper's distributions:
/// TOP500 architectures and operating systems, uniform memory/disk over
/// {1, 2, 4, 8, 16} GB, and a performance index `p ~ U[1, 2]`.
///
/// # Example
///
/// ```
/// use aria_workload::ProfileGenerator;
/// use aria_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(1);
/// let profile = ProfileGenerator::paper().generate(&mut rng);
/// assert!(profile.performance.value() >= 1.0 && profile.performance.value() <= 2.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct ProfileGenerator;

impl ProfileGenerator {
    /// The paper's profile generator.
    pub fn paper() -> Self {
        ProfileGenerator
    }

    /// Samples one node profile.
    pub fn generate(&self, rng: &mut SimRng) -> NodeProfile {
        NodeProfile::new(
            CategoricalField::architecture(rng),
            CategoricalField::operating_system(rng),
            CapacityDistribution::sample(rng),
            CapacityDistribution::sample(rng),
            PerfIndex::new(rng.f64_range(1.0, 2.0)).expect("sampled within [1,2]"),
        )
    }

    /// Samples `n` node profiles.
    pub fn generate_many(&self, n: usize, rng: &mut SimRng) -> Vec<NodeProfile> {
        (0..n).map(|_| self.generate(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aria_grid::Architecture;

    #[test]
    fn profiles_respect_all_distributions() {
        let mut rng = SimRng::seed_from(8);
        let profiles = ProfileGenerator::paper().generate_many(20_000, &mut rng);
        let amd64 =
            profiles.iter().filter(|p| p.arch == Architecture::Amd64).count() as f64;
        assert!((amd64 / profiles.len() as f64 - 0.872).abs() < 0.01);
        for p in &profiles {
            assert!([1, 2, 4, 8, 16].contains(&p.memory_gb));
            assert!([1, 2, 4, 8, 16].contains(&p.disk_gb));
            assert!((1.0..=2.0).contains(&p.performance.value()));
        }
    }

    #[test]
    fn memory_and_disk_are_independent() {
        let mut rng = SimRng::seed_from(9);
        let profiles = ProfileGenerator::paper().generate_many(20_000, &mut rng);
        let equal = profiles.iter().filter(|p| p.memory_gb == p.disk_gb).count() as f64;
        // Independent uniform over 5 levels: ~20 % equal pairs.
        assert!((equal / profiles.len() as f64 - 0.2).abs() < 0.02);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = ProfileGenerator::paper().generate_many(50, &mut SimRng::seed_from(4));
        let b = ProfileGenerator::paper().generate_many(50, &mut SimRng::seed_from(4));
        assert_eq!(a, b);
    }
}
