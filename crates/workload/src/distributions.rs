//! The random distributions of the paper's evaluation (§IV-B, §IV-D).

use aria_grid::{Architecture, OperatingSystem};
use aria_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// The TOP500-derived categorical distributions used for both node
/// profiles and job requirements (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CategoricalField;

impl CategoricalField {
    /// Architecture weights, aligned with [`Architecture::ALL`]:
    /// AMD64 87.2 %, POWER 11 %, IA-64 1.2 %, SPARC 0.2 %, MIPS 0.2 %,
    /// NEC 0.2 %.
    pub const ARCH_WEIGHTS: [f64; 6] = [0.872, 0.11, 0.012, 0.002, 0.002, 0.002];

    /// Operating-system weights, aligned with [`OperatingSystem::ALL`]:
    /// LINUX 88.6 %, SOLARIS 5.8 %, UNIX 4.4 %, WINDOWS 1 %, BSD 0.2 %.
    pub const OS_WEIGHTS: [f64; 5] = [0.886, 0.058, 0.044, 0.01, 0.002];

    /// Samples an architecture from the TOP500 distribution.
    pub fn architecture(rng: &mut SimRng) -> Architecture {
        Architecture::ALL[rng.weighted_index(&Self::ARCH_WEIGHTS)]
    }

    /// Samples an operating system from the TOP500 distribution.
    pub fn operating_system(rng: &mut SimRng) -> OperatingSystem {
        OperatingSystem::ALL[rng.weighted_index(&Self::OS_WEIGHTS)]
    }
}

/// Memory/disk capacities: independently and uniformly one of
/// {1, 2, 4, 8, 16} GB (§IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct CapacityDistribution;

impl CapacityDistribution {
    /// The capacity levels, in GB.
    pub const LEVELS: [u16; 5] = [1, 2, 4, 8, 16];

    /// Samples a capacity in GB.
    pub fn sample(rng: &mut SimRng) -> u16 {
        *rng.choose(&Self::LEVELS)
    }
}

/// A normal distribution clamped to `[min, max]` over durations, as used
/// for ERTs: `N(2h30m, 1h15m)` bounded to `[1h, 4h]` (§IV-D).
///
/// Clamping (rather than rejection) follows the paper's wording of using
/// "a lower bound of 1h and an upper bound of 4h to avoid extreme cases".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClampedNormal {
    /// Mean of the underlying normal.
    pub mean: SimDuration,
    /// Standard deviation of the underlying normal.
    pub std_dev: SimDuration,
    /// Lower clamp.
    pub min: SimDuration,
    /// Upper clamp.
    pub max: SimDuration,
}

impl ClampedNormal {
    /// Creates a clamped normal.
    ///
    /// # Panics
    ///
    /// Panics if `min > max`.
    pub fn new(mean: SimDuration, std_dev: SimDuration, min: SimDuration, max: SimDuration) -> Self {
        assert!(min <= max, "clamp range is inverted");
        ClampedNormal { mean, std_dev, min, max }
    }

    /// The paper's ERT distribution: `N(2h30m, 1h15m)` in `[1h, 4h]`.
    pub fn paper_ert() -> Self {
        ClampedNormal::new(
            SimDuration::from_mins(150),
            SimDuration::from_mins(75),
            SimDuration::from_hours(1),
            SimDuration::from_hours(4),
        )
    }

    /// Deadline slack for the *Deadline* scenarios: on average 7h30m
    /// after expected completion (3× the ERT distribution's mean and
    /// spread). The slack may clamp to zero — a freshly submitted job can
    /// have almost no room beyond its own running time, which is what
    /// makes deadline misses possible at all.
    pub fn paper_deadline_slack() -> Self {
        ClampedNormal::new(
            SimDuration::from_mins(450),
            SimDuration::from_mins(225),
            SimDuration::ZERO,
            SimDuration::from_hours(15),
        )
    }

    /// Deadline slack for the *DeadlineH* (hard) scenarios: on average
    /// 2h30m after expected completion — "the aforementioned
    /// distribution" (§IV-D), again floored at zero.
    pub fn paper_tight_deadline_slack() -> Self {
        ClampedNormal::new(
            SimDuration::from_mins(150),
            SimDuration::from_mins(75),
            SimDuration::ZERO,
            SimDuration::from_hours(5),
        )
    }

    /// Samples a duration.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        let value = rng.normal(self.mean.as_secs_f64(), self.std_dev.as_secs_f64());
        SimDuration::from_secs_f64(value)
            .max(self.min)
            .min(self.max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn architecture_frequencies_match_top500() {
        let mut rng = SimRng::seed_from(1);
        let n = 200_000;
        let mut amd64 = 0;
        let mut power = 0;
        for _ in 0..n {
            match CategoricalField::architecture(&mut rng) {
                Architecture::Amd64 => amd64 += 1,
                Architecture::Power => power += 1,
                _ => {}
            }
        }
        assert!((amd64 as f64 / n as f64 - 0.872).abs() < 0.005);
        assert!((power as f64 / n as f64 - 0.11).abs() < 0.005);
    }

    #[test]
    fn os_frequencies_match_top500() {
        let mut rng = SimRng::seed_from(2);
        let n = 200_000;
        let linux = (0..n)
            .filter(|_| CategoricalField::operating_system(&mut rng) == OperatingSystem::Linux)
            .count();
        assert!((linux as f64 / n as f64 - 0.886).abs() < 0.005);
    }

    #[test]
    fn weights_sum_to_one() {
        assert!((CategoricalField::ARCH_WEIGHTS.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!((CategoricalField::OS_WEIGHTS.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn capacities_are_uniform_over_levels() {
        let mut rng = SimRng::seed_from(3);
        let n = 50_000;
        let mut counts = std::collections::BTreeMap::new();
        for _ in 0..n {
            *counts.entry(CapacityDistribution::sample(&mut rng)).or_insert(0usize) += 1;
        }
        assert_eq!(counts.len(), 5);
        for level in CapacityDistribution::LEVELS {
            let freq = counts[&level] as f64 / n as f64;
            assert!((freq - 0.2).abs() < 0.01, "level {level}: {freq}");
        }
    }

    #[test]
    fn ert_distribution_is_clamped() {
        let dist = ClampedNormal::paper_ert();
        let mut rng = SimRng::seed_from(4);
        for _ in 0..10_000 {
            let ert = dist.sample(&mut rng);
            assert!(ert >= SimDuration::from_hours(1));
            assert!(ert <= SimDuration::from_hours(4));
        }
    }

    #[test]
    fn ert_mean_is_near_two_and_a_half_hours() {
        let dist = ClampedNormal::paper_ert();
        let mut rng = SimRng::seed_from(5);
        let n = 50_000;
        let mean_secs: f64 =
            (0..n).map(|_| dist.sample(&mut rng).as_secs_f64()).sum::<f64>() / n as f64;
        // Clamping pulls slightly toward the middle; stay within 5 minutes.
        assert!((mean_secs - 9000.0).abs() < 300.0, "mean = {mean_secs}s");
    }

    #[test]
    fn slack_distributions_scale() {
        let soft = ClampedNormal::paper_deadline_slack();
        let hard = ClampedNormal::paper_tight_deadline_slack();
        assert_eq!(soft.mean, SimDuration::from_mins(450));
        assert_eq!(hard.mean, SimDuration::from_mins(150));
        assert_eq!(soft.min, SimDuration::ZERO);
        assert_eq!(hard.min, SimDuration::ZERO);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_clamp_panics() {
        ClampedNormal::new(
            SimDuration::from_mins(10),
            SimDuration::from_mins(1),
            SimDuration::from_mins(20),
            SimDuration::from_mins(5),
        );
    }
}
