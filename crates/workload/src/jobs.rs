//! Random job generation (§IV-D).

use crate::distributions::{CapacityDistribution, CategoricalField, ClampedNormal};
use aria_grid::{JobId, JobRequirements, JobSpec, NodeProfile};
use aria_sim::{SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// Configuration of the random job generator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct JobGeneratorConfig {
    /// ERT distribution (the paper's `N(2h30m, 1h15m)` in `[1h, 4h]`).
    pub ert: ClampedNormal,
    /// When `Some`, jobs carry a deadline `submit + ERT + slack` with the
    /// slack drawn from this distribution (§IV-D).
    pub deadline_slack: Option<ClampedNormal>,
    /// Resample a job's requirements until at least one node of the given
    /// grid can satisfy them (see [`JobGenerator::generate_feasible`]).
    /// Keeps the paper's property that all 1000 jobs eventually complete.
    pub ensure_feasible: bool,
}

impl JobGeneratorConfig {
    /// Batch jobs with the paper's ERT distribution.
    pub fn paper_batch() -> Self {
        JobGeneratorConfig {
            ert: ClampedNormal::paper_ert(),
            deadline_slack: None,
            ensure_feasible: true,
        }
    }

    /// Deadline jobs with the soft (7h30m average) slack.
    pub fn paper_deadline() -> Self {
        JobGeneratorConfig {
            deadline_slack: Some(ClampedNormal::paper_deadline_slack()),
            ..Self::paper_batch()
        }
    }

    /// Deadline jobs with the hard (2h30m average) slack (*DeadlineH*).
    pub fn paper_tight_deadline() -> Self {
        JobGeneratorConfig {
            deadline_slack: Some(ClampedNormal::paper_tight_deadline_slack()),
            ..Self::paper_batch()
        }
    }
}

/// Generates randomized jobs with unique ids.
///
/// Requirements follow the same distributions as node profiles, so a
/// typical job matches roughly a fifth of a heterogeneous grid — rare
/// architecture + large memory demands can be very selective.
///
/// # Example
///
/// ```
/// use aria_workload::JobGenerator;
/// use aria_sim::{SimRng, SimTime};
///
/// let mut rng = SimRng::seed_from(3);
/// let mut gen = JobGenerator::paper_batch();
/// let a = gen.generate(SimTime::from_mins(20), &mut rng);
/// let b = gen.generate(SimTime::from_mins(20), &mut rng);
/// assert_ne!(a.id, b.id);
/// ```
#[derive(Debug, Clone)]
pub struct JobGenerator {
    config: JobGeneratorConfig,
    next_id: u64,
}

impl JobGenerator {
    /// Creates a generator from a configuration.
    pub fn new(config: JobGeneratorConfig) -> Self {
        JobGenerator { config, next_id: 0 }
    }

    /// Batch generator with the paper's distributions.
    pub fn paper_batch() -> Self {
        JobGenerator::new(JobGeneratorConfig::paper_batch())
    }

    /// Deadline generator with the paper's soft slack.
    pub fn paper_deadline() -> Self {
        JobGenerator::new(JobGeneratorConfig::paper_deadline())
    }

    /// The generator's configuration.
    pub fn config(&self) -> &JobGeneratorConfig {
        &self.config
    }

    /// Generates the next job, submitted at `submit`.
    pub fn generate(&mut self, submit: SimTime, rng: &mut SimRng) -> JobSpec {
        let id = JobId::new(self.next_id);
        self.next_id += 1;
        let requirements = Self::sample_requirements(rng);
        let ert = self.config.ert.sample(rng);
        match self.config.deadline_slack {
            None => JobSpec::batch(id, requirements, ert),
            Some(slack) => {
                let deadline = submit + ert + slack.sample(rng);
                JobSpec::with_deadline(id, requirements, ert, deadline)
            }
        }
    }

    /// Generates the next job, resampling its requirements (when
    /// `ensure_feasible` is set) until at least one profile in `grid`
    /// matches.
    ///
    /// Gives up after 1000 attempts and returns the last sample, so a
    /// pathological grid cannot hang the generator.
    pub fn generate_feasible(
        &mut self,
        submit: SimTime,
        grid: &[NodeProfile],
        rng: &mut SimRng,
    ) -> JobSpec {
        let mut job = self.generate(submit, rng);
        if !self.config.ensure_feasible {
            return job;
        }
        let mut attempts = 0;
        while !grid.iter().any(|p| job.requirements.matches(p)) && attempts < 1000 {
            job.requirements = Self::sample_requirements(rng);
            attempts += 1;
        }
        job
    }

    fn sample_requirements(rng: &mut SimRng) -> JobRequirements {
        JobRequirements::new(
            CategoricalField::architecture(rng),
            CategoricalField::operating_system(rng),
            CapacityDistribution::sample(rng),
            CapacityDistribution::sample(rng),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::ProfileGenerator;
    use aria_sim::SimDuration;

    #[test]
    fn ids_are_unique_and_sequential() {
        let mut rng = SimRng::seed_from(1);
        let mut generator = JobGenerator::paper_batch();
        let jobs: Vec<JobSpec> =
            (0..100).map(|_| generator.generate(SimTime::ZERO, &mut rng)).collect();
        for (i, job) in jobs.iter().enumerate() {
            assert_eq!(job.id, JobId::new(i as u64));
        }
    }

    #[test]
    fn batch_jobs_have_no_deadline() {
        let mut rng = SimRng::seed_from(2);
        let mut generator = JobGenerator::paper_batch();
        for _ in 0..50 {
            assert!(!generator.generate(SimTime::ZERO, &mut rng).is_deadline());
        }
    }

    #[test]
    fn deadline_lies_beyond_submit_plus_ert() {
        let mut rng = SimRng::seed_from(3);
        let mut generator = JobGenerator::paper_deadline();
        let submit = SimTime::from_hours(2);
        for _ in 0..200 {
            let job = generator.generate(submit, &mut rng);
            let deadline = job.deadline.expect("deadline generator emits deadlines");
            assert!(deadline >= submit + job.ert);
            assert!(deadline <= submit + job.ert + SimDuration::from_hours(15));
        }
    }

    #[test]
    fn tight_deadlines_are_tighter() {
        let mut rng = SimRng::seed_from(4);
        let mut soft = JobGenerator::paper_deadline();
        let mut hard = JobGenerator::new(JobGeneratorConfig::paper_tight_deadline());
        let n = 2000;
        let avg = |generator: &mut JobGenerator, rng: &mut SimRng| -> f64 {
            (0..n)
                .map(|_| {
                    let j = generator.generate(SimTime::ZERO, rng);
                    (j.deadline.unwrap().saturating_since(SimTime::ZERO) - j.ert).as_secs_f64()
                })
                .sum::<f64>()
                / n as f64
        };
        let soft_slack = avg(&mut soft, &mut rng);
        let hard_slack = avg(&mut hard, &mut rng);
        assert!(soft_slack > 2.5 * hard_slack, "soft {soft_slack}s vs hard {hard_slack}s");
    }

    #[test]
    fn generate_feasible_matches_some_node() {
        let mut rng = SimRng::seed_from(5);
        let grid = ProfileGenerator::paper().generate_many(50, &mut rng);
        let mut generator = JobGenerator::paper_batch();
        for _ in 0..300 {
            let job = generator.generate_feasible(SimTime::ZERO, &grid, &mut rng);
            assert!(
                grid.iter().any(|p| job.requirements.matches(p)),
                "infeasible job {job} escaped the resampler"
            );
        }
    }

    #[test]
    fn generate_feasible_without_flag_does_not_resample() {
        let mut rng = SimRng::seed_from(6);
        let config = JobGeneratorConfig { ensure_feasible: false, ..JobGeneratorConfig::paper_batch() };
        let mut generator = JobGenerator::new(config);
        // Empty grid: nothing can match, but generation still succeeds.
        let job = generator.generate_feasible(SimTime::ZERO, &[], &mut rng);
        assert_eq!(job.id, JobId::new(0));
    }

    #[test]
    fn feasible_generation_terminates_on_impossible_grid() {
        let mut rng = SimRng::seed_from(7);
        let mut generator = JobGenerator::paper_batch();
        // No profiles at all: the resampler caps attempts and returns.
        let job = generator.generate_feasible(SimTime::ZERO, &[], &mut rng);
        assert_eq!(job.id, JobId::new(0));
    }
}
