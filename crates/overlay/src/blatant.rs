//! A BLATANT-S-style swarm overlay maintainer.
//!
//! BLATANT-S (\[28\] in the paper) keeps a peer-to-peer overlay with a
//! *bounded average path length* and a *minimal number of links* by
//! letting ant-like agents wander the topology: construction ants add a
//! shortcut when they find themselves far (in hops) from their nest, and
//! pruning ants remove links whose endpoints remain close without them.
//!
//! The re-implementation here reproduces that contract inside the
//! simulator. Ants are simulated as bounded random walks over the current
//! topology; distance checks that a real deployment would estimate from
//! ant pheromone tables are answered exactly by bounded BFS (the
//! simulator owns the global graph anyway). What matters for ARiA is the
//! *product*: a connected overlay whose average path length converges
//! just below the target bound with a small average degree — 500 nodes at
//! target 9 settle around degree 4, matching §IV-A.

use crate::latency::LatencyModel;
use crate::topology::{NodeId, Topology};
use aria_sim::SimRng;

/// Swarm-based overlay builder/maintainer with a path-length bound.
///
/// # Example
///
/// ```
/// use aria_overlay::{Blatant, LatencyModel};
/// use aria_sim::SimRng;
///
/// let mut rng = SimRng::seed_from(42);
/// let mut blatant = Blatant::new(9.0, LatencyModel::default());
/// let mut topo = blatant.build(200, &mut rng);
/// assert!(topo.is_connected());
/// assert!(topo.avg_path_length() <= 9.0);
///
/// // Grow the overlay by one node (Expanding scenarios).
/// let newcomer = blatant.integrate_node(&mut topo, &mut rng);
/// assert!(topo.degree(newcomer) >= 2);
/// ```
#[derive(Debug, Clone)]
pub struct Blatant {
    target_path_length: f64,
    latency: LatencyModel,
    /// Length of an ant's random walk, in hops.
    walk_length: u32,
    /// Links below this degree are never pruned (keeps the graph robust).
    min_degree: usize,
}

impl Blatant {
    /// Creates a maintainer with the given average-path-length bound.
    ///
    /// # Panics
    ///
    /// Panics if `target_path_length < 2`.
    pub fn new(target_path_length: f64, latency: LatencyModel) -> Self {
        assert!(target_path_length >= 2.0, "path length bound must be at least 2");
        Blatant {
            target_path_length,
            latency,
            // det:allow(lossy-float-cast): ceil of a small positive config value
            walk_length: (target_path_length * 2.0).ceil() as u32,
            min_degree: 2,
        }
    }

    /// The configured average-path-length bound.
    pub fn target_path_length(&self) -> f64 {
        self.target_path_length
    }

    /// Builds an overlay of `n` nodes whose average path length is below
    /// the bound.
    ///
    /// Starts from a latency-weighted ring (which guarantees
    /// connectivity, as in BLATANT-S bootstrap), then alternates
    /// construction and pruning ant waves until the path length converges
    /// under the bound and redundant links are gone.
    pub fn build(&mut self, n: usize, rng: &mut SimRng) -> Topology {
        let mut topo = Topology::with_nodes(n);
        if n < 2 {
            return topo;
        }
        for i in 0..n {
            let next = NodeId::new(((i + 1) % n) as u32);
            topo.connect(NodeId::new(i as u32), next, self.latency.sample(rng));
        }
        if n <= 3 {
            return topo;
        }

        // Construction waves: dispatch ants until the sampled average
        // path length is under the bound (aiming slightly below so that
        // the exact value also satisfies it).
        let sample_sources = 32.min(n);
        let mut waves = 0;
        while topo.sampled_path_length(sample_sources, rng) > self.target_path_length * 0.95 {
            self.construction_wave(&mut topo, n, rng);
            waves += 1;
            assert!(waves < 10_000, "overlay construction failed to converge");
        }

        // Densification: BLATANT-S keeps a few redundant links per node
        // for robustness (the paper's overlay attains average degree ≈ 4).
        // Low-degree nodes send discovery ants and link to their endpoint.
        // The discovery walk is short so the added links stay *local*:
        // they improve fault tolerance without acting as long-range
        // shortcuts, which keeps the average path length near the bound.
        let mut low: Vec<NodeId> = topo.nodes().filter(|&v| topo.degree(v) < 4).collect();
        rng.shuffle(&mut low);
        for nest in low {
            let mut here = nest;
            let mut prev = None;
            for _ in 0..2 + rng.u64_range(0, 2) {
                let next = topo.sample_neighbors(here, 1, prev, rng);
                let Some(&next) = next.first() else { break };
                prev = Some(here);
                here = next;
            }
            if here != nest && !topo.are_connected(nest, here) {
                topo.connect(nest, here, self.latency.sample(rng));
            }
        }

        // Pruning waves: remove links that do not contribute, re-adding
        // none (a removal is kept only if the endpoints remain close).
        for _ in 0..n / 2 {
            self.pruning_ant(&mut topo, rng);
        }
        topo
    }

    /// One wave of construction ants (one ant per √n nodes, at least 4).
    fn construction_wave(&self, topo: &mut Topology, n: usize, rng: &mut SimRng) {
        let ants = ((n as f64).sqrt() as usize).max(4); // det:allow(lossy-float-cast): floor(sqrt(n)) is exact for any grid size
        for _ in 0..ants {
            self.construction_ant(topo, rng);
        }
    }

    /// A construction ant: random-walks from its nest and proposes a
    /// shortcut to where it ends up if the nest is too far away.
    fn construction_ant(&self, topo: &mut Topology, rng: &mut SimRng) {
        let nest = NodeId::new(rng.u64_range(0, topo.len() as u64) as u32);
        let mut here = nest;
        let mut prev = None;
        for _ in 0..self.walk_length {
            let next = topo.sample_neighbors(here, 1, prev, rng);
            let Some(&next) = next.first() else { break };
            prev = Some(here);
            here = next;
        }
        if here == nest || topo.are_connected(nest, here) {
            return;
        }
        // The bound the ant enforces is stricter than the average target:
        // local distances above ~half the bound get a shortcut. This is
        // what drags the *average* below the target.
        // det:allow(lossy-float-cast): ceil of a small positive config value
        let bound = (self.target_path_length / 2.0).ceil() as u32;
        if topo.bounded_distance(nest, here, bound).is_none() {
            topo.connect(nest, here, self.latency.sample(rng));
        }
    }

    /// A pruning ant: picks a random link and removes it if both
    /// endpoints keep an alternative path within the bound and neither
    /// drops below the minimum degree.
    fn pruning_ant(&self, topo: &mut Topology, rng: &mut SimRng) {
        if topo.is_empty() {
            return;
        }
        let a = NodeId::new(rng.u64_range(0, topo.len() as u64) as u32);
        if topo.degree(a) <= self.min_degree {
            return;
        }
        let neighbors = topo.neighbors(a).to_vec();
        let b = *rng.choose(&neighbors);
        if topo.degree(b) <= self.min_degree {
            return;
        }
        topo.disconnect(a, b);
        // det:allow(lossy-float-cast): ceil of a small positive config value
        let bound = (self.target_path_length / 2.0).ceil() as u32;
        if topo.bounded_distance(a, b, bound).is_none() {
            // The link was load-bearing: restore it.
            topo.connect(a, b, self.latency.sample(rng));
        }
    }

    /// Connects a newly joining node into an existing overlay
    /// (Expanding scenarios, §IV-E).
    ///
    /// The newcomer bootstraps off one random contact, then discovery
    /// ants walk outward from the contact and report distinct attachment
    /// points, mirroring how BLATANT-S merges new nodes without central
    /// coordination. The newcomer ends with 2–4 links.
    pub fn integrate_node(&mut self, topo: &mut Topology, rng: &mut SimRng) -> NodeId {
        let newcomer = topo.add_node();
        if topo.len() == 1 {
            return newcomer;
        }
        let contact = NodeId::new(rng.u64_range(0, topo.len() as u64 - 1) as u32);
        topo.connect(newcomer, contact, self.latency.sample(rng));

        let extra_links = rng.u64_range(1, 4) as usize;
        for _ in 0..extra_links {
            let mut here = contact;
            let mut prev = Some(newcomer);
            for _ in 0..self.walk_length {
                let next = topo.sample_neighbors(here, 1, prev, rng);
                let Some(&next) = next.first() else { break };
                prev = Some(here);
                here = next;
            }
            if here != newcomer && !topo.are_connected(newcomer, here) {
                topo.connect(newcomer, here, self.latency.sample(rng));
            }
        }
        newcomer
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn build(n: usize, target: f64, seed: u64) -> Topology {
        let mut rng = SimRng::seed_from(seed);
        Blatant::new(target, LatencyModel::default()).build(n, &mut rng)
    }

    #[test]
    fn tiny_overlays_are_rings() {
        let t = build(3, 3.0, 1);
        assert!(t.is_connected());
        assert_eq!(t.link_count(), 3);
        let t = build(1, 3.0, 1);
        assert_eq!(t.link_count(), 0);
        let t = build(0, 3.0, 1);
        assert!(t.is_empty());
    }

    #[test]
    fn built_overlay_meets_path_length_bound() {
        for seed in [1, 2, 3] {
            let t = build(200, 9.0, seed);
            assert!(t.is_connected(), "seed {seed}: disconnected");
            let apl = t.avg_path_length();
            assert!(apl <= 9.0, "seed {seed}: APL {apl} > 9");
            assert!(apl >= 3.0, "seed {seed}: suspiciously dense (APL {apl})");
        }
    }

    #[test]
    fn degree_stays_small() {
        let t = build(300, 9.0, 7);
        let avg = t.avg_degree();
        assert!(avg < 8.0, "avg degree {avg} too large for a minimal-link overlay");
        assert!(avg >= 2.0, "avg degree {avg} below the connectivity floor");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let a = build(100, 6.0, 5);
        let b = build(100, 6.0, 5);
        for n in a.nodes() {
            assert_eq!(a.neighbors(n), b.neighbors(n));
        }
        let c = build(100, 6.0, 6);
        let differs = a.nodes().any(|n| a.neighbors(n) != c.neighbors(n));
        assert!(differs, "different seeds should give different overlays");
    }

    #[test]
    fn integrate_node_keeps_overlay_connected() {
        let mut rng = SimRng::seed_from(13);
        let mut blatant = Blatant::new(6.0, LatencyModel::default());
        let mut topo = blatant.build(80, &mut rng);
        for _ in 0..40 {
            let newcomer = blatant.integrate_node(&mut topo, &mut rng);
            assert!(topo.degree(newcomer) >= 1);
            assert!(topo.degree(newcomer) <= 4);
        }
        assert_eq!(topo.len(), 120);
        assert!(topo.is_connected());
        // Growth should not blow the path-length bound up badly.
        assert!(topo.avg_path_length() <= 6.0 * 1.5);
    }

    #[test]
    fn pruning_preserves_connectivity() {
        let mut rng = SimRng::seed_from(21);
        let mut blatant = Blatant::new(5.0, LatencyModel::default());
        let mut topo = blatant.build(120, &mut rng);
        // Hammer the overlay with extra pruning waves.
        for _ in 0..500 {
            blatant.pruning_ant(&mut topo, &mut rng);
        }
        assert!(topo.is_connected());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn absurd_target_panics() {
        Blatant::new(1.0, LatencyModel::default());
    }
}
