//! The link latency model ("a custom simulator reproducing realistic
//! round-trip delays", §IV-A).

use aria_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};

/// Samples one-way link latencies.
///
/// Latencies are drawn log-uniformly between `min` and `max`: most links
/// are fast (LAN/metro), a heavy tail reaches intercontinental delays —
/// a standard first-order model of Internet RTT distributions. The
/// default range (5–150 ms one-way, i.e. 10–300 ms RTT) spans campus
/// links to transoceanic paths.
///
/// # Example
///
/// ```
/// use aria_overlay::LatencyModel;
/// use aria_sim::SimRng;
///
/// let model = LatencyModel::default();
/// let mut rng = SimRng::seed_from(1);
/// let one_way = model.sample(&mut rng);
/// assert!(one_way >= model.min() && one_way <= model.max());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatencyModel {
    min_ms: u64,
    max_ms: u64,
}

impl LatencyModel {
    /// Creates a model sampling one-way latencies in `[min, max]`.
    ///
    /// # Panics
    ///
    /// Panics if `min` is zero or `min > max`.
    pub fn new(min: SimDuration, max: SimDuration) -> Self {
        assert!(!min.is_zero(), "minimum latency must be positive");
        assert!(min <= max, "latency range is inverted");
        LatencyModel { min_ms: min.as_millis(), max_ms: max.as_millis() }
    }

    /// A fixed latency for every link (useful in tests).
    pub fn constant(latency: SimDuration) -> Self {
        LatencyModel::new(latency, latency)
    }

    /// Smallest possible one-way latency.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_millis(self.min_ms)
    }

    /// Largest possible one-way latency.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_millis(self.max_ms)
    }

    /// Samples a one-way link latency.
    pub fn sample(&self, rng: &mut SimRng) -> SimDuration {
        if self.min_ms == self.max_ms {
            return SimDuration::from_millis(self.min_ms);
        }
        let (lo, hi) = ((self.min_ms as f64).ln(), (self.max_ms as f64).ln());
        // det:allow(lossy-float-cast): exp() of a value in [ln(min), ln(max)], rounded
        SimDuration::from_millis(rng.f64_range(lo, hi).exp().round() as u64)
    }
}

impl Default for LatencyModel {
    /// 5–150 ms one-way (10–300 ms round trip).
    fn default() -> Self {
        LatencyModel::new(SimDuration::from_millis(5), SimDuration::from_millis(150))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_stay_in_range() {
        let model = LatencyModel::default();
        let mut rng = SimRng::seed_from(5);
        for _ in 0..10_000 {
            let l = model.sample(&mut rng);
            assert!(l >= model.min() && l <= model.max(), "latency {l} out of range");
        }
    }

    #[test]
    fn constant_model_is_constant() {
        let model = LatencyModel::constant(SimDuration::from_millis(25));
        let mut rng = SimRng::seed_from(5);
        for _ in 0..100 {
            assert_eq!(model.sample(&mut rng), SimDuration::from_millis(25));
        }
    }

    #[test]
    fn log_uniform_prefers_low_latencies() {
        let model = LatencyModel::default();
        let mut rng = SimRng::seed_from(9);
        let n = 20_000;
        let below_median_range = (0..n)
            .filter(|_| model.sample(&mut rng) < SimDuration::from_millis((5 + 150) / 2))
            .count();
        // Log-uniform: far more than half of the mass below the arithmetic
        // midpoint.
        assert!(below_median_range as f64 / n as f64 > 0.7);
    }

    #[test]
    #[should_panic(expected = "inverted")]
    fn inverted_range_panics() {
        LatencyModel::new(SimDuration::from_millis(10), SimDuration::from_millis(5));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_min_panics() {
        LatencyModel::new(SimDuration::ZERO, SimDuration::from_millis(5));
    }
}
