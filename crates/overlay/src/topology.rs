//! The overlay graph: nodes, undirected latency-weighted links, and the
//! graph measurements quoted by the paper (average path length, degree).

use aria_sim::{SimDuration, SimRng};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::fmt;

/// Identifier of an overlay node (dense, assigned in creation order).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize, Default,
)]
pub struct NodeId(u32);

impl NodeId {
    /// Wraps a raw index.
    pub const fn new(raw: u32) -> Self {
        NodeId(raw)
    }

    /// The raw index.
    pub const fn raw(self) -> u32 {
        self.0
    }

    /// The index as `usize`, for slice addressing.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// An undirected overlay network with per-link one-way latencies.
///
/// Neighbor lists are kept sorted so that iteration order — and therefore
/// every simulation run — is deterministic.
///
/// # Example
///
/// ```
/// use aria_overlay::Topology;
/// use aria_sim::SimDuration;
///
/// let mut topo = Topology::new();
/// let a = topo.add_node();
/// let b = topo.add_node();
/// topo.connect(a, b, SimDuration::from_millis(20));
/// assert_eq!(topo.neighbors(a), [b]);
/// assert_eq!(topo.latency(a, b), Some(SimDuration::from_millis(20)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    /// Sorted neighbor lists, indexed by node.
    adjacency: Vec<Vec<NodeId>>,
    /// One-way link latencies, parallel to `adjacency`.
    latencies: Vec<Vec<SimDuration>>,
}

impl Topology {
    /// Creates an empty overlay.
    pub fn new() -> Self {
        Topology::default()
    }

    /// Creates an overlay with `n` isolated nodes.
    pub fn with_nodes(n: usize) -> Self {
        Topology { adjacency: vec![Vec::new(); n], latencies: vec![Vec::new(); n] }
    }

    /// Adds a new isolated node and returns its id.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.adjacency.len() as u32);
        self.adjacency.push(Vec::new());
        self.latencies.push(Vec::new());
        id
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.adjacency.len()
    }

    /// Whether the overlay has no nodes.
    pub fn is_empty(&self) -> bool {
        self.adjacency.is_empty()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adjacency.len() as u32).map(NodeId)
    }

    /// Creates an undirected link with the given one-way latency.
    ///
    /// Connecting a pair twice updates the latency. Self-links are
    /// rejected.
    ///
    /// # Panics
    ///
    /// Panics if either node does not exist.
    pub fn connect(&mut self, a: NodeId, b: NodeId, latency: SimDuration) {
        assert!(a.index() < self.len() && b.index() < self.len(), "unknown node");
        if a == b {
            return;
        }
        self.insert_half(a, b, latency);
        self.insert_half(b, a, latency);
    }

    fn insert_half(&mut self, from: NodeId, to: NodeId, latency: SimDuration) {
        match self.adjacency[from.index()].binary_search(&to) {
            Ok(pos) => self.latencies[from.index()][pos] = latency,
            Err(pos) => {
                self.adjacency[from.index()].insert(pos, to);
                self.latencies[from.index()].insert(pos, latency);
            }
        }
    }

    /// Removes the undirected link between `a` and `b`, if present.
    ///
    /// Returns whether a link was removed.
    pub fn disconnect(&mut self, a: NodeId, b: NodeId) -> bool {
        let removed = self.remove_half(a, b);
        if removed {
            self.remove_half(b, a);
        }
        removed
    }

    fn remove_half(&mut self, from: NodeId, to: NodeId) -> bool {
        if from.index() >= self.len() {
            return false;
        }
        match self.adjacency[from.index()].binary_search(&to) {
            Ok(pos) => {
                self.adjacency[from.index()].remove(pos);
                self.latencies[from.index()].remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Whether `a` and `b` are directly linked.
    pub fn are_connected(&self, a: NodeId, b: NodeId) -> bool {
        a.index() < self.len() && self.adjacency[a.index()].binary_search(&b).is_ok()
    }

    /// The sorted neighbor list of a node.
    pub fn neighbors(&self, node: NodeId) -> &[NodeId] {
        &self.adjacency[node.index()]
    }

    /// One-way latency of the direct link `a`–`b`, or `None` if not
    /// linked.
    pub fn latency(&self, a: NodeId, b: NodeId) -> Option<SimDuration> {
        let pos = self.adjacency[a.index()].binary_search(&b).ok()?;
        Some(self.latencies[a.index()][pos])
    }

    /// Degree of a node.
    pub fn degree(&self, node: NodeId) -> usize {
        self.adjacency[node.index()].len()
    }

    /// Average node degree.
    pub fn avg_degree(&self) -> f64 {
        if self.is_empty() {
            return 0.0;
        }
        self.adjacency.iter().map(Vec::len).sum::<usize>() as f64 / self.len() as f64
    }

    /// Number of undirected links.
    pub fn link_count(&self) -> usize {
        self.adjacency.iter().map(Vec::len).sum::<usize>() / 2
    }

    /// Up to `k` distinct random neighbors of `node`, excluding `exclude`.
    ///
    /// This is the neighbor sampling used when forwarding REQUEST and
    /// INFORM floods ("at most k random neighbors of the current node are
    /// contacted", §IV-E).
    pub fn sample_neighbors(
        &self,
        node: NodeId,
        k: usize,
        exclude: Option<NodeId>,
        rng: &mut SimRng,
    ) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.sample_neighbors_into(node, k, exclude, rng, &mut out);
        out
    }

    /// Allocation-free [`Topology::sample_neighbors`]: fills `out`
    /// (cleared first) with the sample, reusing its capacity. Draws the
    /// same random sequence as the allocating variant, so callers can
    /// switch without perturbing seeded runs.
    pub fn sample_neighbors_into(
        &self,
        node: NodeId,
        k: usize,
        exclude: Option<NodeId>,
        rng: &mut SimRng,
        out: &mut Vec<NodeId>,
    ) {
        out.clear();
        out.extend(self.adjacency[node.index()].iter().copied().filter(|&n| Some(n) != exclude));
        rng.sample_in_place(out, k);
    }

    /// Breadth-first hop distances from `source` (`None` = unreachable).
    pub fn bfs_distances(&self, source: NodeId) -> Vec<Option<u32>> {
        let mut dist = vec![None; self.len()];
        dist[source.index()] = Some(0);
        let mut frontier = VecDeque::from([source]);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u.index()].expect("frontier nodes have distances");
            for &v in &self.adjacency[u.index()] {
                if dist[v.index()].is_none() {
                    dist[v.index()] = Some(du + 1);
                    frontier.push_back(v);
                }
            }
        }
        dist
    }

    /// Hop distance between two nodes, bounded by `limit` (`None` if the
    /// target is farther than `limit` or unreachable).
    ///
    /// Used by the swarm maintainer to test whether a link is redundant
    /// without paying for a full BFS.
    pub fn bounded_distance(&self, from: NodeId, to: NodeId, limit: u32) -> Option<u32> {
        if from == to {
            return Some(0);
        }
        let mut dist = vec![u32::MAX; self.len()];
        dist[from.index()] = 0;
        let mut frontier = VecDeque::from([from]);
        while let Some(u) = frontier.pop_front() {
            let du = dist[u.index()];
            if du >= limit {
                continue;
            }
            for &v in &self.adjacency[u.index()] {
                if dist[v.index()] == u32::MAX {
                    if v == to {
                        return Some(du + 1);
                    }
                    dist[v.index()] = du + 1;
                    frontier.push_back(v);
                }
            }
        }
        None
    }

    /// Whether every node can reach every other node.
    pub fn is_connected(&self) -> bool {
        if self.is_empty() {
            return true;
        }
        self.bfs_distances(NodeId(0)).iter().all(Option::is_some)
    }

    /// Exact average shortest-path length over all connected ordered
    /// pairs (0 for graphs with fewer than 2 nodes).
    pub fn avg_path_length(&self) -> f64 {
        let mut total = 0u64;
        let mut pairs = 0u64;
        for source in self.nodes() {
            for d in self.bfs_distances(source).iter().flatten() {
                if *d > 0 {
                    total += u64::from(*d);
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }

    /// Average shortest-path length estimated from `samples` BFS sources
    /// (exact if `samples >= len`).
    pub fn sampled_path_length(&self, samples: usize, rng: &mut SimRng) -> f64 {
        if self.len() < 2 {
            return 0.0;
        }
        if samples >= self.len() {
            return self.avg_path_length();
        }
        let all: Vec<NodeId> = self.nodes().collect();
        let sources = rng.choose_multiple(&all, samples);
        let mut total = 0u64;
        let mut pairs = 0u64;
        for source in sources {
            for d in self.bfs_distances(source).iter().flatten() {
                if *d > 0 {
                    total += u64::from(*d);
                    pairs += 1;
                }
            }
        }
        if pairs == 0 {
            0.0
        } else {
            total as f64 / pairs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    fn line(n: u32) -> Topology {
        let mut t = Topology::with_nodes(n as usize);
        for i in 0..n - 1 {
            t.connect(NodeId(i), NodeId(i + 1), ms(10));
        }
        t
    }

    #[test]
    fn connect_is_symmetric_and_sorted() {
        let mut t = Topology::with_nodes(4);
        t.connect(NodeId(0), NodeId(3), ms(5));
        t.connect(NodeId(0), NodeId(1), ms(7));
        assert_eq!(t.neighbors(NodeId(0)), [NodeId(1), NodeId(3)]);
        assert_eq!(t.neighbors(NodeId(3)), [NodeId(0)]);
        assert!(t.are_connected(NodeId(3), NodeId(0)));
        assert_eq!(t.latency(NodeId(3), NodeId(0)), Some(ms(5)));
    }

    #[test]
    fn reconnect_updates_latency() {
        let mut t = Topology::with_nodes(2);
        t.connect(NodeId(0), NodeId(1), ms(5));
        t.connect(NodeId(0), NodeId(1), ms(9));
        assert_eq!(t.degree(NodeId(0)), 1);
        assert_eq!(t.latency(NodeId(0), NodeId(1)), Some(ms(9)));
    }

    #[test]
    fn self_links_are_ignored() {
        let mut t = Topology::with_nodes(1);
        t.connect(NodeId(0), NodeId(0), ms(1));
        assert_eq!(t.degree(NodeId(0)), 0);
    }

    #[test]
    fn disconnect_removes_both_halves() {
        let mut t = Topology::with_nodes(2);
        t.connect(NodeId(0), NodeId(1), ms(5));
        assert!(t.disconnect(NodeId(0), NodeId(1)));
        assert!(!t.are_connected(NodeId(0), NodeId(1)));
        assert_eq!(t.degree(NodeId(1)), 0);
        assert!(!t.disconnect(NodeId(0), NodeId(1)));
    }

    #[test]
    fn bfs_distances_on_a_line() {
        let t = line(5);
        let d = t.bfs_distances(NodeId(0));
        assert_eq!(d, vec![Some(0), Some(1), Some(2), Some(3), Some(4)]);
    }

    #[test]
    fn bfs_reports_unreachable() {
        let mut t = Topology::with_nodes(3);
        t.connect(NodeId(0), NodeId(1), ms(1));
        let d = t.bfs_distances(NodeId(0));
        assert_eq!(d[2], None);
        assert!(!t.is_connected());
    }

    #[test]
    fn avg_path_length_line_of_three() {
        // Distances: 0-1:1, 0-2:2, 1-2:1 => mean = (1+2+1)/3 = 4/3.
        let t = line(3);
        assert!((t.avg_path_length() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn sampled_path_length_close_to_exact() {
        let mut rng = SimRng::seed_from(11);
        let mut t = line(60);
        // add some chords
        for i in (0..50).step_by(7) {
            t.connect(NodeId(i), NodeId(i + 9), ms(10));
        }
        let exact = t.avg_path_length();
        let sampled = t.sampled_path_length(30, &mut rng);
        assert!((exact - sampled).abs() / exact < 0.25, "exact={exact} sampled={sampled}");
        // With samples >= n it is exact.
        assert_eq!(t.sampled_path_length(100, &mut rng), exact);
    }

    #[test]
    fn bounded_distance_respects_limit() {
        let t = line(10);
        assert_eq!(t.bounded_distance(NodeId(0), NodeId(3), 5), Some(3));
        assert_eq!(t.bounded_distance(NodeId(0), NodeId(9), 5), None);
        assert_eq!(t.bounded_distance(NodeId(4), NodeId(4), 0), Some(0));
    }

    #[test]
    fn sample_neighbors_excludes_and_bounds() {
        let mut t = Topology::with_nodes(6);
        for i in 1..6 {
            t.connect(NodeId(0), NodeId(i), ms(1));
        }
        let mut rng = SimRng::seed_from(3);
        let picked = t.sample_neighbors(NodeId(0), 3, Some(NodeId(2)), &mut rng);
        assert_eq!(picked.len(), 3);
        assert!(!picked.contains(&NodeId(2)));
        let all = t.sample_neighbors(NodeId(0), 10, None, &mut rng);
        assert_eq!(all.len(), 5);
    }

    #[test]
    fn degree_and_link_count() {
        let t = line(4);
        assert_eq!(t.link_count(), 3);
        assert!((t.avg_degree() - 1.5).abs() < 1e-12);
        assert_eq!(t.degree(NodeId(1)), 2);
    }

    #[test]
    fn empty_topology_is_connected_and_zero() {
        let t = Topology::new();
        assert!(t.is_connected());
        assert_eq!(t.avg_degree(), 0.0);
        assert_eq!(t.avg_path_length(), 0.0);
    }
}
