//! Baseline overlay families.
//!
//! The paper's future work calls for "experiments with different types of
//! peer-to-peer overlay networks in order to gain a better understanding
//! of its correlation to the meta-scheduling performance" (§VI). These
//! builders provide classic topologies for that ablation:
//! a ring, a random regular-ish graph, and a Watts-Strogatz small world.

use crate::latency::LatencyModel;
use crate::topology::{NodeId, Topology};
use aria_sim::SimRng;

/// A bidirectional ring of `n` nodes.
///
/// The worst overlay for flooding-based discovery: path lengths grow
/// linearly with `n`.
pub fn ring(n: usize, latency: &LatencyModel, rng: &mut SimRng) -> Topology {
    let mut topo = Topology::with_nodes(n);
    if n < 2 {
        return topo;
    }
    for i in 0..n {
        let next = NodeId::new(((i + 1) % n) as u32);
        topo.connect(NodeId::new(i as u32), next, latency.sample(rng));
    }
    topo
}

/// A connected random graph where every node has degree at least `d`
/// (degree close to `d` on average).
///
/// Built as a ring (for guaranteed connectivity) plus random chords until
/// the average degree reaches `d`.
///
/// # Panics
///
/// Panics if `d < 2` or `d >= n`.
pub fn random_regular(n: usize, d: usize, latency: &LatencyModel, rng: &mut SimRng) -> Topology {
    assert!(d >= 2, "degree must be at least 2 for connectivity");
    assert!(n == 0 || d < n, "degree must be below the node count");
    let mut topo = ring(n, latency, rng);
    if n < 3 {
        return topo;
    }
    let target_links = n * d / 2;
    let mut attempts = 0;
    while topo.link_count() < target_links && attempts < n * d * 20 {
        attempts += 1;
        let a = NodeId::new(rng.u64_range(0, n as u64) as u32);
        let b = NodeId::new(rng.u64_range(0, n as u64) as u32);
        if a != b && !topo.are_connected(a, b) {
            topo.connect(a, b, latency.sample(rng));
        }
    }
    topo
}

/// A Watts-Strogatz small-world overlay: a ring lattice where each node
/// links to its `k/2` nearest neighbors on each side, with every link
/// rewired to a random endpoint with probability `beta`.
///
/// Rewiring never disconnects the lattice backbone below degree 2.
///
/// # Panics
///
/// Panics if `k` is odd, `k < 2`, `k >= n` (for `n > 0`), or `beta` is
/// outside `[0, 1]`.
pub fn watts_strogatz(
    n: usize,
    k: usize,
    beta: f64,
    latency: &LatencyModel,
    rng: &mut SimRng,
) -> Topology {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and at least 2");
    assert!(n == 0 || k < n, "k must be below the node count");
    assert!((0.0..=1.0).contains(&beta), "beta must be within [0, 1]");
    let mut topo = Topology::with_nodes(n);
    if n < 2 {
        return topo;
    }
    for i in 0..n {
        for j in 1..=k / 2 {
            let neighbor = NodeId::new(((i + j) % n) as u32);
            topo.connect(NodeId::new(i as u32), neighbor, latency.sample(rng));
        }
    }
    // Rewire each lattice link with probability beta.
    for i in 0..n {
        let a = NodeId::new(i as u32);
        for j in 1..=k / 2 {
            let b = NodeId::new(((i + j) % n) as u32);
            if !rng.chance(beta) || !topo.are_connected(a, b) {
                continue;
            }
            if topo.degree(a) <= 2 || topo.degree(b) <= 2 {
                continue;
            }
            let c = NodeId::new(rng.u64_range(0, n as u64) as u32);
            if c != a && !topo.are_connected(a, c) {
                topo.disconnect(a, b);
                topo.connect(a, c, latency.sample(rng));
            }
        }
    }
    topo
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::seed_from(17)
    }

    #[test]
    fn ring_has_n_links_and_degree_two() {
        let t = ring(50, &LatencyModel::default(), &mut rng());
        assert!(t.is_connected());
        assert_eq!(t.link_count(), 50);
        assert!(t.nodes().all(|n| t.degree(n) == 2));
        // APL of a ring is ~ n/4.
        assert!((t.avg_path_length() - 12.75).abs() < 0.3);
    }

    #[test]
    fn ring_degenerate_sizes() {
        assert_eq!(ring(0, &LatencyModel::default(), &mut rng()).len(), 0);
        assert_eq!(ring(1, &LatencyModel::default(), &mut rng()).link_count(), 0);
        let two = ring(2, &LatencyModel::default(), &mut rng());
        assert_eq!(two.link_count(), 1);
    }

    #[test]
    fn random_regular_hits_degree_target() {
        let t = random_regular(200, 4, &LatencyModel::default(), &mut rng());
        assert!(t.is_connected());
        assert!((t.avg_degree() - 4.0).abs() < 0.2, "avg degree {}", t.avg_degree());
        // Random graphs have logarithmic path lengths.
        assert!(t.avg_path_length() < 6.0);
    }

    #[test]
    fn watts_strogatz_shortens_paths_with_beta() {
        let lattice = watts_strogatz(200, 4, 0.0, &LatencyModel::default(), &mut rng());
        let small_world = watts_strogatz(200, 4, 0.2, &LatencyModel::default(), &mut rng());
        assert!(lattice.is_connected());
        assert!(small_world.is_connected());
        assert!(
            small_world.avg_path_length() < lattice.avg_path_length(),
            "rewiring should shorten paths: {} vs {}",
            small_world.avg_path_length(),
            lattice.avg_path_length()
        );
        assert!((small_world.avg_degree() - 4.0).abs() < 0.5);
    }

    #[test]
    fn builders_are_deterministic() {
        let a = random_regular(100, 4, &LatencyModel::default(), &mut SimRng::seed_from(3));
        let b = random_regular(100, 4, &LatencyModel::default(), &mut SimRng::seed_from(3));
        for n in a.nodes() {
            assert_eq!(a.neighbors(n), b.neighbors(n));
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn odd_k_panics() {
        watts_strogatz(10, 3, 0.1, &LatencyModel::default(), &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least 2")]
    fn low_degree_panics() {
        random_regular(10, 1, &LatencyModel::default(), &mut rng());
    }
}
