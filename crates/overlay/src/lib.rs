//! # aria-overlay — self-organized peer-to-peer overlay
//!
//! The ARiA protocol assumes "all nodes are connected through some sort of
//! peer-to-peer overlay network enabling communication between any pair of
//! nodes" (§III-A). The paper's evaluation uses **BLATANT-S** (Brocco &
//! Hirsbrunner, GridPeer 2009): a fully distributed, bio-inspired
//! algorithm that maintains an overlay with *bounded average path length*
//! and a *minimal number of links*.
//!
//! This crate provides:
//!
//! * [`Topology`] — an undirected overlay graph with per-link one-way
//!   latencies ("realistic round-trip delays", §IV-A) and graph analysis
//!   (average path length, degree, connectivity).
//! * [`Blatant`] — a swarm-inspired maintainer reproducing the BLATANT-S
//!   contract: ant-like agents random-walk the overlay, proposing shortcut
//!   links where the path-length bound is violated and pruning links that
//!   do not contribute to the solution. `Blatant::build` produces the
//!   paper's evaluation overlay: 500 nodes, average path length ≈ 9,
//!   average degree ≈ 4. [`Blatant::integrate_node`] grows the overlay
//!   one node at a time (the *Expanding* scenarios).
//! * [`builders`] — baseline overlay families (ring, random regular,
//!   Watts-Strogatz small world) used by the future-work ablation
//!   "experiments with different types of peer-to-peer overlay networks"
//!   (§VI).
//!
//! ## Example
//!
//! ```
//! use aria_overlay::{Blatant, LatencyModel};
//! use aria_sim::SimRng;
//!
//! let mut rng = SimRng::seed_from(1);
//! let topo = Blatant::new(9.0, LatencyModel::default())
//!     .build(100, &mut rng);
//! assert!(topo.is_connected());
//! assert!(topo.avg_path_length() <= 9.0);
//! ```

#![forbid(unsafe_code)]
#![deny(rust_2018_idioms)]

pub mod blatant;
pub mod builders;
pub mod latency;
pub mod topology;

pub use blatant::Blatant;
pub use latency::LatencyModel;
pub use topology::{NodeId, Topology};
