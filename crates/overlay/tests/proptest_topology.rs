//! Property-based tests for the overlay: graph symmetry, maintenance
//! invariants and builder guarantees under arbitrary seeds and sizes.

use aria_overlay::{builders, Blatant, LatencyModel, NodeId, Topology};
use aria_sim::{SimDuration, SimRng};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// connect/disconnect keep the adjacency perfectly symmetric.
    #[test]
    fn adjacency_stays_symmetric(
        n in 2usize..40,
        ops in proptest::collection::vec((0u32..40, 0u32..40, any::<bool>()), 0..200),
    ) {
        let mut topo = Topology::with_nodes(n);
        for (a, b, add) in ops {
            let a = NodeId::new(a % n as u32);
            let b = NodeId::new(b % n as u32);
            if add {
                topo.connect(a, b, SimDuration::from_millis(10));
            } else {
                topo.disconnect(a, b);
            }
        }
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                prop_assert!(topo.are_connected(v, u), "{u}->{v} not symmetric");
                prop_assert_eq!(topo.latency(u, v), topo.latency(v, u));
                prop_assert_ne!(u, v, "self-link crept in");
            }
        }
    }

    /// The swarm-built overlay is always connected and within the path
    /// length bound, for any seed and reasonable size.
    #[test]
    fn blatant_builds_connected_bounded_overlays(
        seed in 0u64..10_000,
        n in 10usize..150,
        target in 4.0f64..10.0,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topo = Blatant::new(target, LatencyModel::default()).build(n, &mut rng);
        prop_assert_eq!(topo.len(), n);
        prop_assert!(topo.is_connected());
        prop_assert!(topo.avg_path_length() <= target + 1e-9);
        // Minimal-link goal: never denser than ~4x a ring.
        prop_assert!(topo.link_count() <= n * 4);
    }

    /// Node joins preserve connectivity and never leave the newcomer
    /// isolated or over-connected.
    #[test]
    fn joins_preserve_connectivity(
        seed in 0u64..10_000,
        joins in 1usize..30,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let mut blatant = Blatant::new(6.0, LatencyModel::default());
        let mut topo = blatant.build(40, &mut rng);
        for _ in 0..joins {
            let newcomer = blatant.integrate_node(&mut topo, &mut rng);
            prop_assert!(topo.degree(newcomer) >= 1);
            prop_assert!(topo.degree(newcomer) <= 4);
        }
        prop_assert!(topo.is_connected());
        prop_assert_eq!(topo.len(), 40 + joins);
    }

    /// BFS distances satisfy the triangle property along edges: adjacent
    /// nodes' distances from any source differ by at most one.
    #[test]
    fn bfs_distances_are_lipschitz_on_edges(seed in 0u64..10_000) {
        let mut rng = SimRng::seed_from(seed);
        let topo = builders::random_regular(60, 4, &LatencyModel::default(), &mut rng);
        let dist = topo.bfs_distances(NodeId::new(0));
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                let (du, dv) = (dist[u.index()].unwrap(), dist[v.index()].unwrap());
                prop_assert!(du.abs_diff(dv) <= 1, "edge {u}-{v}: {du} vs {dv}");
            }
        }
    }

    /// bounded_distance agrees with full BFS whenever it returns a value,
    /// and only returns None when the true distance exceeds the bound.
    #[test]
    fn bounded_distance_agrees_with_bfs(
        seed in 0u64..10_000,
        limit in 1u32..8,
        from in 0u32..50,
        to in 0u32..50,
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topo = builders::watts_strogatz(50, 4, 0.1, &LatencyModel::default(), &mut rng);
        let from = NodeId::new(from);
        let to = NodeId::new(to);
        let truth = topo.bfs_distances(from)[to.index()];
        match topo.bounded_distance(from, to, limit) {
            Some(d) => prop_assert_eq!(Some(d), truth),
            None => prop_assert!(truth.is_none() || truth.unwrap() > limit),
        }
    }

    /// Neighbor sampling honors the exclusion and the bound, and samples
    /// only real neighbors.
    #[test]
    fn sample_neighbors_is_sound(
        seed in 0u64..10_000,
        k in 0usize..8,
        node in 0u32..40,
        exclude in proptest::option::of(0u32..40),
    ) {
        let mut rng = SimRng::seed_from(seed);
        let topo = builders::random_regular(40, 4, &LatencyModel::default(), &mut rng);
        let node = NodeId::new(node);
        let exclude = exclude.map(NodeId::new);
        let picked = topo.sample_neighbors(node, k, exclude, &mut rng);
        prop_assert!(picked.len() <= k);
        let mut unique = picked.clone();
        unique.sort_unstable();
        unique.dedup();
        prop_assert_eq!(unique.len(), picked.len(), "duplicate sample");
        for p in picked {
            prop_assert!(topo.are_connected(node, p));
            prop_assert_ne!(Some(p), exclude);
        }
    }

    /// Latencies sampled for links always stay within the model's range.
    #[test]
    fn builder_latencies_in_range(seed in 0u64..10_000) {
        let model = LatencyModel::new(
            SimDuration::from_millis(5),
            SimDuration::from_millis(150),
        );
        let mut rng = SimRng::seed_from(seed);
        let topo = builders::random_regular(30, 4, &model, &mut rng);
        for u in topo.nodes() {
            for &v in topo.neighbors(u) {
                let latency = topo.latency(u, v).unwrap();
                prop_assert!(latency >= model.min() && latency <= model.max());
            }
        }
    }
}
