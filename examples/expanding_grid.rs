//! An expanding grid: new nodes join while the workload is running, and
//! dynamic rescheduling moves waiting jobs onto the fresh resources (the
//! paper's Figure 5, scaled down).
//!
//! ```text
//! cargo run --release -p aria-scenarios --example expanding_grid
//! ```

use aria_scenarios::{Runner, Scenario};
use aria_sim::SimTime;

fn main() {
    let runner = Runner::scaled(150, 400);
    let seeds = [1, 2, 3];

    let results = runner.run_many(&[Scenario::Expanding, Scenario::IExpanding], &seeds);

    // Compare idle-node counts at a few instants around the growth phase.
    println!("idle nodes over time (growth starts at 1h23m):");
    println!("{:>8} {:>12} {:>12}", "time", "Expanding", "iExpanding");
    for hours in [1, 2, 3, 4, 6, 8] {
        let t = SimTime::from_hours(hours);
        let plain = results[0].avg_idle_series().value_at(t).unwrap_or(0.0);
        let resched = results[1].avg_idle_series().value_at(t).unwrap_or(0.0);
        println!("{:>7}h {:>12.1} {:>12.1}", hours, plain, resched);
    }

    println!("\nscenario    completion  waiting");
    for r in &results {
        println!(
            "{:11} {:7.1}min {:6.1}min",
            r.scenario.name(),
            r.completion().mean() / 60.0,
            r.waiting().mean() / 60.0,
        );
    }
    println!(
        "\nwith rescheduling, jobs migrate onto newly joined nodes instead of\n\
         waiting in the queues they were first assigned to."
    );
}
