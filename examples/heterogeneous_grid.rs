//! The paper's motivating workload: a heterogeneous grid where half the
//! nodes run FCFS and half run SJF, compared with and without ARiA's
//! dynamic rescheduling phase (the Mixed vs iMixed scenarios, scaled
//! down).
//!
//! ```text
//! cargo run --release -p aria-scenarios --example heterogeneous_grid
//! ```

use aria_grid::Policy;
use aria_metrics::TrafficClass;
use aria_overlay::NodeId;
use aria_scenarios::{Runner, Scenario};

fn main() {
    let runner = Runner::scaled(150, 400);
    let seeds = [1, 2, 3];

    // Show what "heterogeneous" means: architectures, operating systems
    // and local schedulers all vary per node.
    let world = aria_core::World::new(
        Scenario::IMixed.world_config(),
        seeds[0],
    );
    let sample: Vec<String> = (0..5)
        .map(|i| {
            let node = NodeId::new(i);
            format!("  n{i}: {} [{}]", world.profile_of(node), world.policy_of(node))
        })
        .collect();
    println!("sample of node profiles:\n{}", sample.join("\n"));
    let fcfs = (0..world.topology().len() as u32)
        .filter(|&i| world.policy_of(NodeId::new(i)) == Policy::Fcfs)
        .count();
    println!("policy split: {fcfs} FCFS / {} SJF\n", world.topology().len() - fcfs);

    // Run the same workload with and without dynamic rescheduling.
    let results = runner.run_many(&[Scenario::Mixed, Scenario::IMixed], &seeds);
    println!("scenario   completion  waiting  reschedules  INFORM msgs");
    for r in &results {
        println!(
            "{:9} {:8.1}min {:7.1}min {:10.0} {:12.0}",
            r.scenario.name(),
            r.completion().mean() / 60.0,
            r.waiting().mean() / 60.0,
            r.avg_reschedules(),
            r.avg_messages(TrafficClass::Inform),
        );
    }

    let plain = results[0].completion().mean();
    let resched = results[1].completion().mean();
    println!(
        "\ndynamic rescheduling changes mean completion time by {:+.1}%",
        (resched - plain) / plain * 100.0
    );
}
