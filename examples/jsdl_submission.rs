//! Submitting jobs described in JSDL — the job description schema the
//! paper points implementations at (§III-A, citing OGF GFD.56).
//!
//! ```text
//! cargo run --release -p aria-scenarios --example jsdl_submission
//! ```

use aria_core::{World, WorldConfig};
use aria_grid::JobId;
use aria_jsdl::JobDefinition;
use aria_sim::SimTime;

const RENDER_JOB: &str = r#"<?xml version="1.0" encoding="UTF-8"?>
<jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl"
                    xmlns:aria="urn:aria:extensions:1">
  <jsdl:JobDescription>
    <jsdl:JobIdentification>
      <jsdl:JobName>render-frame-0042</jsdl:JobName>
    </jsdl:JobIdentification>
    <jsdl:Resources>
      <jsdl:CPUArchitecture><jsdl:CPUArchitectureName>x86_64</jsdl:CPUArchitectureName></jsdl:CPUArchitecture>
      <jsdl:OperatingSystem>
        <jsdl:OperatingSystemType><jsdl:OperatingSystemName>LINUX</jsdl:OperatingSystemName></jsdl:OperatingSystemType>
      </jsdl:OperatingSystem>
      <jsdl:TotalPhysicalMemory><jsdl:LowerBoundedRange>4294967296</jsdl:LowerBoundedRange></jsdl:TotalPhysicalMemory>
      <jsdl:TotalDiskSpace><jsdl:LowerBoundedRange>8589934592</jsdl:LowerBoundedRange></jsdl:TotalDiskSpace>
    </jsdl:Resources>
    <aria:EstimatedRunningTime>5400</aria:EstimatedRunningTime>
  </jsdl:JobDescription>
</jsdl:JobDefinition>"#;

const ANALYSIS_JOB: &str = r#"<jsdl:JobDefinition xmlns:jsdl="http://schemas.ggf.org/jsdl/2005/11/jsdl"
                    xmlns:aria="urn:aria:extensions:1">
  <jsdl:JobDescription>
    <jsdl:JobIdentification><jsdl:JobName>seq-analysis</jsdl:JobName></jsdl:JobIdentification>
    <jsdl:Resources>
      <jsdl:CPUArchitecture><jsdl:CPUArchitectureName>power</jsdl:CPUArchitectureName></jsdl:CPUArchitecture>
      <jsdl:OperatingSystem>
        <jsdl:OperatingSystemType><jsdl:OperatingSystemName>AIX</jsdl:OperatingSystemName></jsdl:OperatingSystemType>
      </jsdl:OperatingSystem>
      <jsdl:TotalPhysicalMemory><jsdl:LowerBoundedRange>2147483648</jsdl:LowerBoundedRange></jsdl:TotalPhysicalMemory>
    </jsdl:Resources>
    <aria:EstimatedRunningTime>7200</aria:EstimatedRunningTime>
    <aria:Deadline>43200</aria:Deadline>
  </jsdl:JobDescription>
</jsdl:JobDefinition>"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut world = World::new(WorldConfig::small_test(120), 9);

    for (i, document) in [RENDER_JOB, ANALYSIS_JOB].iter().enumerate() {
        let definition = JobDefinition::parse(document)?;
        let spec = definition.to_job_spec(JobId::new(i as u64))?;
        println!(
            "parsed {:<18} -> {} (deadline: {})",
            definition.name.as_deref().unwrap_or("<unnamed>"),
            spec.requirements,
            spec.deadline.map_or("none".to_string(), |d| d.to_string()),
        );
        // The deadline job needs an EDF node to bid; this mixed FCFS/SJF
        // test grid has none, so submit only the batch job for execution
        // and show the deadline job's round-tripped document instead.
        if spec.deadline.is_none() {
            world.submit_job(SimTime::from_mins(1 + i as u64), spec);
        } else {
            println!("re-serialized:\n{}", definition.to_xml());
        }
    }

    world.run();
    let metrics = world.metrics();
    println!("completed {} JSDL-described job(s)", metrics.completed_count());
    for record in metrics.records().values() {
        println!(
            "  {}: waited {}, ran {} on node {}",
            record.id,
            record.waiting_time().expect("completed"),
            record.execution_time().expect("completed"),
            record.executed_on.expect("completed"),
        );
    }
    Ok(())
}
