//! Quickstart: spin up a small ARiA grid, submit a workload, and read
//! the results.
//!
//! ```text
//! cargo run --release -p aria-scenarios --example quickstart
//! ```

use aria_core::{World, WorldConfig};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};

fn main() {
    // 1. A grid of 100 heterogeneous nodes connected by a self-organized
    //    overlay, with mixed FCFS/SJF local schedulers and dynamic
    //    rescheduling enabled (all defaults from the ICDCS 2010 paper).
    let config = WorldConfig::small_test(100);
    let mut world = World::new(config, /* seed */ 7);

    println!(
        "grid: {} nodes, {} overlay links, avg path length {:.1}",
        world.topology().len(),
        world.topology().link_count(),
        world.topology().avg_path_length(),
    );

    // 2. Submit 200 randomly generated batch jobs, one every 30 seconds.
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(30), 200);
    world.submit_schedule(&schedule, &mut jobs);

    // 3. Run the discrete-event simulation to completion.
    world.run();
    let metrics = world.metrics();

    // 4. Read the results.
    println!("completed jobs:      {}", metrics.completed_count());
    println!(
        "avg completion time: {:.1} min (waiting {:.1} + execution {:.1})",
        metrics.completion_summary().mean() / 60.0,
        metrics.waiting_summary().mean() / 60.0,
        metrics.execution_summary().mean() / 60.0,
    );
    println!(
        "dynamic reschedules: {:.0} across {} jobs",
        metrics.reschedule_summary().sum(),
        metrics.records().len(),
    );
    let traffic = metrics.traffic();
    println!(
        "traffic: {} messages, {:.2} MB total ({:.1} KB per node)",
        traffic.total_messages(),
        traffic.total_bytes() as f64 / 1e6,
        traffic.bytes_per_node(world.topology().len()) / 1e3,
    );
}
