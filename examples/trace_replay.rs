//! Replaying a Standard Workload Format (SWF) trace through the ARiA
//! grid — the pipeline for the paper's future-work item on "full-scale
//! evaluation with real grid workload traces" (§VI).
//!
//! Real archive traces are not redistributable, so this example
//! synthesizes one with the paper's distributions, writes it to disk as
//! a bona-fide `.swf` file, reads it back, and replays it. Point the
//! parser at a file from the Parallel/Grid Workloads Archives and the
//! rest of the pipeline is unchanged.
//!
//! ```text
//! cargo run --release -p aria-scenarios --example trace_replay
//! ```

use aria_core::{World, WorldConfig};
use aria_sim::SimRng;
use aria_trace::{ReplayConfig, SwfTrace};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SimRng::seed_from(4);

    // 1. Synthesize a 500-job trace and round-trip it through the SWF
    //    text format (exactly what reading an archive file looks like).
    let trace = SwfTrace::synthesize(500, &mut rng);
    let path = std::env::temp_dir().join("aria_synthetic.swf");
    std::fs::write(&path, trace.to_string())?;
    let text = std::fs::read_to_string(&path)?;
    let trace: SwfTrace = text.parse()?;
    println!("loaded {} jobs from {}", trace.len(), path.display());
    println!("header: {:?}", trace.header.first());

    // 2. Map trace rows onto ARiA submissions. SWF has no architecture/OS
    //    fields, so those are sampled from the paper's distributions.
    let submissions = trace.replay(&ReplayConfig::default(), &mut rng);

    // 3. Run them through a grid.
    let mut world = World::new(WorldConfig::small_test(150), 4);
    for (at, job) in submissions {
        world.submit_job(at, job);
    }
    world.run();
    let metrics = world.metrics();

    println!(
        "completed {}/{} trace jobs; mean completion {:.1} min (waiting {:.1} min)",
        metrics.completed_count(),
        trace.len(),
        metrics.completion_summary().mean() / 60.0,
        metrics.waiting_summary().mean() / 60.0,
    );
    println!(
        "dynamic reschedules: {:.0}; traffic {:.2} MB",
        metrics.reschedule_summary().sum(),
        metrics.traffic().total_bytes() as f64 / 1e6,
    );
    Ok(())
}
