//! ARiA is local-scheduler agnostic: the protocol never inspects queue
//! order, only the cost quotes. This example runs the same workload over
//! grids using the paper's policies (FCFS, SJF) and the future-work
//! extensions implemented here (LJF, Priority), including a grid mixing
//! all four.
//!
//! ```text
//! cargo run --release -p aria-scenarios --example custom_policy
//! ```

use aria_core::{PolicyMix, ReservationPlan, World, WorldConfig};
use aria_grid::Policy;
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};

fn run(policies: PolicyMix, label: &str) {
    run_with(policies, label, None);
}

fn run_with(policies: PolicyMix, label: &str, reservations: Option<ReservationPlan>) {
    let mut config = WorldConfig::small_test(120);
    config.policies = policies;
    config.reservations = reservations;
    let mut world = World::new(config, 11);
    let mut jobs = JobGenerator::paper_batch();
    // A brisk workload so queues build up and policy order matters.
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(10), 300);
    world.submit_schedule(&schedule, &mut jobs);
    world.run();
    let metrics = world.metrics();
    println!(
        "{label:24} completion {:6.1}min  waiting {:6.1}min  reschedules {:4.0}",
        metrics.completion_summary().mean() / 60.0,
        metrics.waiting_summary().mean() / 60.0,
        metrics.reschedule_summary().sum(),
    );
}

fn main() {
    println!("same workload, different local scheduling policies:\n");
    run(PolicyMix::Uniform(Policy::Fcfs), "all FCFS");
    run(PolicyMix::Uniform(Policy::Sjf), "all SJF");
    run(PolicyMix::Uniform(Policy::Ljf), "all LJF (extension)");
    run(PolicyMix::Uniform(Policy::Priority), "all Priority (extension)");
    run(
        PolicyMix::Random(vec![Policy::Fcfs, Policy::Sjf, Policy::Ljf, Policy::Priority]),
        "four-way mix",
    );
    println!("\nwith advance reservations blocking the executors (paper future work):\n");
    run_with(
        PolicyMix::Uniform(Policy::Fcfs),
        "FCFS + reservations",
        Some(ReservationPlan::moderate()),
    );
    run_with(
        PolicyMix::Uniform(Policy::Backfill),
        "Backfill + reservations",
        Some(ReservationPlan::moderate()),
    );
    println!(
        "\nthe protocol ran unchanged in every case — nodes only ever\n\
         exchanged REQUEST/ACCEPT/INFORM/ASSIGN messages and ETTC costs."
    );
}
