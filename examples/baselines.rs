//! ARiA against its comparators: an omniscient centralized
//! meta-scheduler (the architecture the paper argues against) and the
//! multiple-simultaneous-requests scheme of the paper's reference [13].
//!
//! ```text
//! cargo run --release -p aria-scenarios --example baselines
//! ```

use aria_core::{CentralScheduler, GossipScheduler, MultiRequestScheduler, PolicyMix, World, WorldConfig};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};

const NODES: usize = 100;
const JOBS: usize = 300;

fn schedule() -> SubmissionSchedule {
    SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(10), JOBS)
}

fn main() {
    println!("{JOBS} jobs over {NODES} nodes, three schedulers:\n");
    println!("{:<28} {:>12} {:>10} {:>14}", "scheduler", "completion", "waiting", "messages");

    {
        let seed = 1u64;
        // 1. ARiA: fully distributed, with dynamic rescheduling.
        let mut world = World::new(WorldConfig::small_test(NODES), seed);
        let mut jobs = JobGenerator::paper_batch();
        world.submit_schedule(&schedule(), &mut jobs);
        world.run();
        let m = world.metrics();
        println!(
            "{:<28} {:>9.1}min {:>7.1}min {:>14}",
            "ARiA (distributed)",
            m.completion_summary().mean() / 60.0,
            m.waiting_summary().mean() / 60.0,
            m.traffic().total_messages(),
        );

        // 2. Centralized omniscient scheduler: perfect knowledge, no
        //    messages — the upper bound ARiA gives up for scalability.
        let mut central = CentralScheduler::new(
            NODES,
            PolicyMix::paper_mixed(),
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        );
        let mut jobs = JobGenerator::paper_batch();
        central.submit_schedule(&schedule(), &mut jobs);
        central.run();
        let m = central.metrics();
        println!(
            "{:<28} {:>9.1}min {:>7.1}min {:>14}",
            "centralized (omniscient)",
            m.completion_summary().mean() / 60.0,
            m.waiting_summary().mean() / 60.0,
            0,
        );

        // 3. Gossip dissemination: placements from cached (stale) state.
        let mut gossip = GossipScheduler::new(
            NODES,
            PolicyMix::paper_mixed(),
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        );
        let mut jobs = JobGenerator::paper_batch();
        gossip.submit_schedule(&schedule(), &mut jobs);
        gossip.run();
        let m = gossip.metrics();
        println!(
            "{:<28} {:>9.1}min {:>7.1}min {:>14}",
            "gossip caches [25]",
            m.completion_summary().mean() / 60.0,
            m.waiting_summary().mean() / 60.0,
            m.traffic().total_messages(),
        );

        // 4. Multiple simultaneous requests (k = 3) with revocation.
        let mut multi = MultiRequestScheduler::new(
            NODES,
            PolicyMix::paper_mixed(),
            3,
            SimTime::from_hours(12),
            SimDuration::from_mins(5),
            seed,
        );
        let mut jobs = JobGenerator::paper_batch();
        multi.submit_schedule(&schedule(), &mut jobs);
        multi.run();
        let m = multi.metrics();
        println!(
            "{:<28} {:>9.1}min {:>7.1}min {:>14}",
            "multi-request (k=3) [13]",
            m.completion_summary().mean() / 60.0,
            m.waiting_summary().mean() / 60.0,
            format!("{} revoked", multi.revoked_replicas()),
        );
    }

    println!(
        "\nthe centralized scheduler makes the best possible *static*\n\
         placement — yet ARiA tends to beat it, because dynamic\n\
         rescheduling keeps correcting placements as queues evolve.\n\
         the multi-request scheme gets late binding too, but pays with\n\
         cancelled replicas clogging the queues (the drawback §II points\n\
         out); ARiA moves jobs without ever double-enqueuing them."
    );
}
