//! Failure injection: nodes crash mid-workload, taking their queues with
//! them, and the §III-D failsafe (initiators tracking their jobs'
//! assignees) rediscovers the lost jobs.
//!
//! ```text
//! cargo run --release -p aria-scenarios --example churn_failsafe
//! ```

use aria_core::{World, WorldConfig};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};

fn run(failsafe: bool) {
    let mut config = WorldConfig::small_test(100);
    config.failsafe = failsafe;
    // Ten crashes spread across the loaded phase.
    config.crashes = (0..10u64).map(|i| SimTime::from_mins(40 + 15 * i)).collect();

    let mut world = World::new(config, 17);
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(15), 300);
    world.submit_schedule(&schedule, &mut jobs);
    world.run();

    let metrics = world.metrics();
    println!(
        "failsafe {:3}: {} crashed nodes, {}/{} jobs completed, {} recovered, {} lost",
        if failsafe { "ON" } else { "off" },
        world.crashed_nodes().len(),
        metrics.completed_count(),
        300,
        world.recovered_count(),
        world.lost_jobs().len(),
    );
    if !world.abandoned_jobs().is_empty() {
        println!(
            "             {} jobs abandoned (their matching nodes died with the crashes)",
            world.abandoned_jobs().len()
        );
    }
}

fn main() {
    println!("300 jobs over 100 nodes; 10 nodes crash while the grid is loaded\n");
    run(true);
    run(false);
    println!(
        "\nwith the failsafe, initiators notice their assignee's crash and\n\
         re-run the REQUEST discovery phase for every job that was lost."
    );
}
