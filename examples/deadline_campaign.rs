//! Deadline scheduling with EDF local schedulers and the NAL cost
//! function: how dynamic rescheduling rescues deadline jobs (the paper's
//! Figure 4, scaled down).
//!
//! ```text
//! cargo run --release -p aria-scenarios --example deadline_campaign
//! ```

use aria_scenarios::{Runner, Scenario};

fn main() {
    let runner = Runner::scaled(150, 400);
    let seeds = [1, 2, 3];

    let scenarios = [
        Scenario::Deadline,
        Scenario::IDeadline,
        Scenario::DeadlineH,
        Scenario::IDeadlineH,
    ];
    let results = runner.run_many(&scenarios, &seeds);

    println!("scenario     missed  avg lateness  avg missed time");
    for r in &results {
        println!(
            "{:11} {:7.1} {:11.1}min {:14.1}min",
            r.scenario.name(),
            r.avg_missed_deadlines(),
            r.avg_lateness_secs() / 60.0,
            r.avg_missed_time_secs() / 60.0,
        );
    }

    let soft_plain = results[0].avg_missed_deadlines();
    let soft_resched = results[1].avg_missed_deadlines();
    let hard_plain = results[2].avg_missed_deadlines();
    let hard_resched = results[3].avg_missed_deadlines();
    println!(
        "\nrescheduling cuts misses: soft {soft_plain:.1} -> {soft_resched:.1}, \
         tight {hard_plain:.1} -> {hard_resched:.1}"
    );
    println!(
        "(the paper reports 187 -> 4 and 236 -> 59 at full 500-node scale)"
    );
}
