//! Golden determinism test: a run is a pure function of `(config, seed)`.
//!
//! The dense-state hot path (interned job payloads, recycled flood slots,
//! buffered fan-out sampling, the 4-ary event heap) is required to be a
//! pure representation change: every metric must stay bit-for-bit
//! identical across refactors. These tests pin small scaled runs to
//! recorded values — if an "optimization" perturbs RNG draws or event
//! ordering, the numbers here move and the diff is caught at review time
//! instead of silently invalidating previous results.

use aria_metrics::TrafficClass;
use aria_scenarios::{Runner, RunStats, Scenario};

fn run(seed: u64) -> RunStats {
    Runner::scaled(30, 15).run_once(Scenario::IMixed, seed)
}

/// Two fresh runs of the same `(config, seed)` must agree exactly —
/// including float-valued summaries, which must be bit-for-bit equal.
#[test]
fn identical_seeds_reproduce_bit_for_bit() {
    for seed in [11, 12] {
        let a = run(seed);
        let b = run(seed);
        assert_eq!(a.completed, b.completed);
        assert_eq!(a.abandoned, b.abandoned);
        assert_eq!(a.traffic.total_messages(), b.traffic.total_messages());
        assert_eq!(a.completion.mean().to_bits(), b.completion.mean().to_bits());
        assert_eq!(a.waiting.mean().to_bits(), b.waiting.mean().to_bits());
        assert_eq!(a.completion_p50.to_bits(), b.completion_p50.to_bits());
        assert_eq!(a.completed_series.values(), b.completed_series.values());
        assert_eq!(a.idle_series.values(), b.idle_series.values());
    }
}

/// The recorded goldens. Exact integer equality; floats to a tolerance
/// far below any behavioral change (they shift by whole seconds when a
/// single RNG draw moves).
#[test]
fn scaled_imixed_matches_recorded_goldens() {
    struct Golden {
        seed: u64,
        completed: u64,
        total_messages: u64,
        request: u64,
        accept: u64,
        inform: u64,
        assign: u64,
        completion_mean: f64,
        completion_p50: f64,
        completion_p95: f64,
        waiting_mean: f64,
    }
    let goldens = [
        Golden {
            seed: 11,
            completed: 15,
            total_messages: 592,
            request: 498,
            accept: 80,
            inform: 0,
            assign: 14,
            completion_mean: 5829.008133333,
            completion_p50: 5927.978,
            completion_p95: 12122.997,
            waiting_mean: 5.1552,
        },
        Golden {
            seed: 12,
            completed: 15,
            total_messages: 1442,
            request: 561,
            accept: 74,
            inform: 793,
            assign: 14,
            completion_mean: 6236.439333333,
            completion_p50: 5704.358,
            completion_p95: 11251.252,
            waiting_mean: 542.790133333,
        },
    ];
    for golden in goldens {
        let stats = run(golden.seed);
        let seed = golden.seed;
        assert_eq!(stats.completed, golden.completed, "seed {seed}: completed");
        assert_eq!(stats.abandoned, 0, "seed {seed}: abandoned");
        assert_eq!(
            stats.traffic.total_messages(),
            golden.total_messages,
            "seed {seed}: total messages"
        );
        assert_eq!(
            stats.traffic.messages(TrafficClass::Request),
            golden.request,
            "seed {seed}: REQUEST count"
        );
        assert_eq!(
            stats.traffic.messages(TrafficClass::Accept),
            golden.accept,
            "seed {seed}: ACCEPT count"
        );
        assert_eq!(
            stats.traffic.messages(TrafficClass::Inform),
            golden.inform,
            "seed {seed}: INFORM count"
        );
        assert_eq!(
            stats.traffic.messages(TrafficClass::Assign),
            golden.assign,
            "seed {seed}: ASSIGN count"
        );
        let close = |actual: f64, expected: f64, what: &str| {
            assert!(
                (actual - expected).abs() < 1e-6,
                "seed {seed}: {what} drifted: {actual} vs {expected}"
            );
        };
        close(stats.completion.mean(), golden.completion_mean, "completion mean");
        close(stats.completion_p50, golden.completion_p50, "completion p50");
        close(stats.completion_p95, golden.completion_p95, "completion p95");
        close(stats.waiting.mean(), golden.waiting_mean, "waiting mean");
        assert_eq!(stats.reschedules, 0.0, "seed {seed}: reschedules");
    }
}
