//! The effect map's integration gates (DESIGN.md §13).
//!
//! Three claims tie the committed `EFFECTS.json` to the running system:
//!
//! 1. **Coverage** — the static map names exactly the handlers the
//!    runtime dispatches, and every runtime-fingerprinted effect class
//!    is declared.
//! 2. **Transparency** — running under the [`EffectAudit`] tracer is a
//!    pure observation: the determinism goldens stay bit-for-bit
//!    identical to untraced runs *and* to their recorded values.
//! 3. **Soundness** — across randomized interleavings of joins,
//!    crashes, transport faults and protocol steps, the tracer never
//!    observes a handler touching a class outside its declared write
//!    set (observed ⊆ static).
//!
//! The companion golden — regenerating the map on an unchanged tree is
//! byte-identical — lives with the analyzer
//! (`crates/xtask/src/effects.rs::committed_effects_map_is_current`).

use std::collections::{BTreeMap, BTreeSet};

use aria_core::{EffectAudit, FaultPlan, PartitionWindow, WorldConfig};
use aria_metrics::TrafficClass;
use aria_probe::NullProbe;
use aria_scenarios::{Runner, Scenario};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use proptest::prelude::*;

/// Every handler the dispatch knows, in sorted order — kept in lockstep
/// with `aria_core::effects::handler_name` and the analyzer's kebab
/// conversion of the `Event` variants.
const HANDLERS: &[&str] = &[
    "accept-window-closed",
    "assign-timeout",
    "crash",
    "deliver",
    "dispatch-retry",
    "execution-complete",
    "inform-tick",
    "join",
    "partition-end",
    "partition-start",
    "recover-job",
    "retry-request",
    "sample",
    "submit",
];

fn effects_json() -> String {
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../EFFECTS.json");
    std::fs::read_to_string(path)
        .expect("EFFECTS.json must be committed; regenerate with `cargo xtask effects`")
}

/// The brace-balanced body of a top-level `"key": { … }` object.
fn section(json: &str, key: &str) -> String {
    let tag = format!("\"{key}\": {{");
    let start = json.find(&tag).unwrap_or_else(|| panic!("no `{key}` section"));
    let open = start + tag.len() - 1;
    let bytes = json.as_bytes();
    let mut depth = 0i32;
    let mut i = open;
    loop {
        match bytes[i] {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {}
        }
        i += 1;
    }
    json[open + 1..i].to_string()
}

/// Handler → declared write set, parsed from the committed map.
fn declared_writes() -> BTreeMap<String, BTreeSet<String>> {
    let json = effects_json();
    let body = section(&json, "handlers");
    let mut out = BTreeMap::new();
    let mut current = String::new();
    for line in body.lines() {
        let t = line.trim();
        if let Some(name) = t.strip_prefix('"').and_then(|r| r.strip_suffix("\": {")) {
            current = name.to_string();
            out.insert(current.clone(), BTreeSet::new());
        } else if let Some(rest) = t.strip_prefix("\"writes\": [") {
            let inner = rest.strip_suffix(']').unwrap_or(rest);
            let classes = inner
                .split(", ")
                .filter(|s| !s.is_empty())
                .map(|s| s.trim_matches('"').to_string());
            out.get_mut(&current).expect("writes before handler name").extend(classes);
        }
    }
    out
}

/// Effect-class names declared in the committed map.
fn declared_classes() -> BTreeSet<String> {
    let json = effects_json();
    let mut out = BTreeSet::new();
    for line in section(&json, "effect_classes").lines() {
        if let Some(rest) = line.trim().strip_prefix('"') {
            if let Some(end) = rest.find('"') {
                out.insert(rest[..end].to_string());
            }
        }
    }
    out
}

/// Claim 1a: the map names exactly the runtime handler set.
#[test]
fn committed_map_names_every_runtime_handler() {
    let writes = declared_writes();
    let names: Vec<&str> = writes.keys().map(String::as_str).collect();
    assert_eq!(names, HANDLERS, "EFFECTS.json handlers drifted from the dispatch");
    for (handler, classes) in &writes {
        assert!(!classes.is_empty(), "handler `{handler}` declares no writes at all");
    }
}

/// Claim 1b: every runtime-fingerprinted class is declared in the map.
#[test]
fn every_tracked_class_is_declared() {
    let classes = declared_classes();
    for class in aria_core::effects::TRACKED_CLASSES {
        assert!(classes.contains(*class), "runtime tracks `{class}` but the map omits it");
    }
}

/// Claim 2: tracing the determinism goldens is a pure observation —
/// every recorded number still matches, and traced == untraced exactly.
#[test]
fn tracer_preserves_determinism_goldens_bit_for_bit() {
    struct Golden {
        seed: u64,
        total: u64,
        request: u64,
        accept: u64,
        inform: u64,
        assign: u64,
    }
    let goldens = [
        Golden { seed: 11, total: 592, request: 498, accept: 80, inform: 0, assign: 14 },
        Golden { seed: 12, total: 1442, request: 561, accept: 74, inform: 793, assign: 14 },
    ];
    let declared = declared_writes();
    let runner = Runner::scaled(30, 15);
    let mut audit = EffectAudit::new();
    for golden in goldens {
        let seed = golden.seed;
        let mut traced =
            runner.build_world(Scenario::IMixed, seed, FaultPlan::none(), NullProbe);
        traced.run_effect_traced(&mut audit);
        let mut plain = runner.build_world(Scenario::IMixed, seed, FaultPlan::none(), NullProbe);
        plain.run();
        assert_eq!(traced.metrics().records(), plain.metrics().records(), "seed {seed}");
        assert_eq!(traced.metrics().traffic(), plain.metrics().traffic(), "seed {seed}");
        assert_eq!(
            traced.metrics().idle_series().values(),
            plain.metrics().idle_series().values(),
            "seed {seed}"
        );
        assert_eq!(traced.metrics().completed_count(), 15, "seed {seed}: completed");
        let traffic = traced.metrics().traffic();
        assert_eq!(traffic.total_messages(), golden.total, "seed {seed}: total");
        assert_eq!(traffic.messages(TrafficClass::Request), golden.request, "seed {seed}");
        assert_eq!(traffic.messages(TrafficClass::Accept), golden.accept, "seed {seed}");
        assert_eq!(traffic.messages(TrafficClass::Inform), golden.inform, "seed {seed}");
        assert_eq!(traffic.messages(TrafficClass::Assign), golden.assign, "seed {seed}");
    }
    assert!(audit.events() > 0);
    if let Err(drift) = audit.check_against(&declared) {
        panic!("effect drift on the determinism goldens: {drift}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Claim 3: under interleaved joins, crashes, lossy transport,
    /// partitions and ordinary protocol steps, observed ⊆ static.
    #[test]
    fn tracer_never_observes_undeclared_touches(
        seed in 0u64..1000,
        joins in 0u64..4,
        crashes in 0u64..3,
        loss_pct in 0u32..30,
        windows in 0u64..2,
    ) {
        let mut config = WorldConfig::small_test(20);
        config.joins = (0..joins).map(|i| SimTime::from_mins(20 + 30 * i)).collect();
        config.crashes = (0..crashes).map(|i| SimTime::from_mins(35 + 45 * i)).collect();
        config.fault = FaultPlan {
            loss: f64::from(loss_pct) / 100.0,
            duplicate: 0.05,
            jitter_ms: 250,
            partitions: (0..windows)
                .map(|i| PartitionWindow {
                    start: SimTime::from_mins(40 + 90 * i),
                    duration: SimDuration::from_mins(8),
                })
                .collect(),
            keep: None,
        };
        let mut world = aria_core::World::with_probe(config, seed, NullProbe);
        let mut generator = JobGenerator::paper_batch();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(40), 10);
        world.submit_schedule(&schedule, &mut generator);
        let mut audit = EffectAudit::new();
        world.run_effect_traced(&mut audit);
        let verdict = audit.check_against(&declared_writes());
        prop_assert!(verdict.is_ok(), "{}", verdict.unwrap_err());
    }
}
