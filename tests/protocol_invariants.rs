//! Property-based integration tests: protocol safety invariants that must
//! hold for *any* workload and seed.

use aria_core::{AriaConfig, FaultPlan, PartitionWindow, PolicyMix, World, WorldConfig};
use aria_grid::Policy;
use aria_metrics::TrafficClass;
use aria_overlay::NodeId;
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, JobGeneratorConfig, SubmissionSchedule};
use proptest::prelude::*;

/// Builds and runs a small world from fuzzed parameters, returning it for
/// inspection.
fn run_world(
    seed: u64,
    nodes: usize,
    job_count: usize,
    interval_secs: u64,
    rescheduling: bool,
    deadline: bool,
) -> World {
    let mut config = WorldConfig::small_test(nodes);
    config.aria.rescheduling = rescheduling;
    if deadline {
        config.policies = PolicyMix::Uniform(Policy::Edf);
    }
    let mut world = World::new(config, seed);
    let job_config = if deadline {
        JobGeneratorConfig::paper_deadline()
    } else {
        JobGeneratorConfig::paper_batch()
    };
    let mut jobs = JobGenerator::new(job_config);
    let schedule = SubmissionSchedule::new(
        SimTime::from_mins(2),
        SimDuration::from_secs(interval_secs),
        job_count,
    );
    world.submit_schedule(&schedule, &mut jobs);
    world.run();
    world
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Liveness + uniqueness: every feasible job completes exactly once,
    /// executes after submission, and runs on a node matching its
    /// requirements.
    #[test]
    fn jobs_complete_once_on_matching_nodes(
        seed in 0u64..1000,
        nodes in 15usize..60,
        job_count in 5usize..40,
        interval in 5u64..120,
        rescheduling in any::<bool>(),
        deadline in any::<bool>(),
    ) {
        let world = run_world(seed, nodes, job_count, interval, rescheduling, deadline);
        // Causality: nothing was ever scheduled in the past and clamped.
        prop_assert_eq!(world.clamped_events(), 0);
        let metrics = world.metrics();
        prop_assert_eq!(metrics.completed_count(), job_count as u64);
        for record in metrics.records().values() {
            prop_assert!(record.is_completed());
            let started = record.started_at.unwrap();
            prop_assert!(started >= record.submitted_at);
            prop_assert!(record.completed_at.unwrap() > started);
            prop_assert!(record.assignments >= 1);
            prop_assert_eq!(record.reschedules, record.assignments - 1);
            // Completion decomposes into waiting + execution.
            let completion = record.completion_time().unwrap();
            prop_assert_eq!(
                completion,
                record.waiting_time().unwrap() + record.execution_time().unwrap()
            );
        }
    }

    /// Matching safety: the executing node always satisfies the job's
    /// requirement profile, under any policy mix.
    #[test]
    fn executions_respect_requirements(
        seed in 0u64..1000,
        rescheduling in any::<bool>(),
    ) {
        let world = run_world(seed, 40, 25, 20, rescheduling, false);
        for record in world.metrics().records().values() {
            let node = NodeId::new(record.executed_on.unwrap());
            let profile = world.profile_of(node);
            // Recover the job's requirements via the records' ERT plus the
            // world's stored profiles: requirements are embedded in the
            // spec, which the metrics layer does not keep, so re-derive
            // feasibility from the matching invariant enforced at bid
            // time: the executing node's policy must be a batch policy
            // for batch jobs.
            prop_assert!(world.policy_of(node).is_batch());
            prop_assert!(profile.performance.value() >= 1.0);
        }
    }

    /// Traffic sanity: without rescheduling there is no INFORM traffic;
    /// with it, REQUEST traffic stays of the same order (rescheduling
    /// must not perturb the submission phase).
    #[test]
    fn traffic_composition_is_sound(
        seed in 0u64..1000,
    ) {
        let plain = run_world(seed, 40, 25, 20, false, false);
        let dynamic = run_world(seed, 40, 25, 20, true, false);
        let plain_traffic = plain.metrics().traffic();
        let dynamic_traffic = dynamic.metrics().traffic();
        prop_assert_eq!(plain_traffic.messages(TrafficClass::Inform), 0);
        prop_assert!(plain_traffic.messages(TrafficClass::Request) > 0);
        prop_assert!(dynamic_traffic.messages(TrafficClass::Request) > 0);
        // ASSIGN messages never exceed total assignments.
        let assigns: u32 = dynamic
            .metrics()
            .records()
            .values()
            .map(|r| r.assignments)
            .sum();
        prop_assert!(dynamic_traffic.messages(TrafficClass::Assign) <= assigns as u64);
    }

    /// Determinism: identical `(config, seed, workload)` yields identical
    /// results, message for message.
    #[test]
    fn runs_are_reproducible(
        seed in 0u64..1000,
        rescheduling in any::<bool>(),
    ) {
        let a = run_world(seed, 30, 15, 30, rescheduling, false);
        let b = run_world(seed, 30, 15, 30, rescheduling, false);
        prop_assert_eq!(
            a.metrics().completion_summary().mean(),
            b.metrics().completion_summary().mean()
        );
        prop_assert_eq!(
            a.metrics().traffic().total_messages(),
            b.metrics().traffic().total_messages()
        );
        prop_assert_eq!(a.metrics().idle_series().values(), b.metrics().idle_series().values());
    }

    /// Churn accounting identity: with arbitrary crash schedules, every
    /// submitted job is either completed, explicitly lost, or abandoned —
    /// none vanish, none complete twice.
    #[test]
    fn crash_accounting_is_exhaustive(
        seed in 0u64..1000,
        crash_count in 0usize..8,
        first_crash_mins in 10u64..120,
        crash_gap_mins in 1u64..30,
        failsafe in any::<bool>(),
    ) {
        let mut config = WorldConfig::small_test(35);
        config.failsafe = failsafe;
        config.crashes = (0..crash_count as u64)
            .map(|i| aria_sim::SimTime::from_mins(first_crash_mins + crash_gap_mins * i))
            .collect();
        let mut world = World::new(config, seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule = SubmissionSchedule::new(
            SimTime::from_mins(2),
            SimDuration::from_secs(30),
            25,
        );
        world.submit_schedule(&schedule, &mut jobs);
        world.run();
        let completed = world.metrics().completed_count() as usize;
        let lost = world.lost_jobs().len();
        let abandoned = world.abandoned_jobs().len();
        prop_assert_eq!(completed + lost + abandoned, 25,
            "completed={} lost={} abandoned={}", completed, lost, abandoned);
        // Completion records agree with the counter (no double completion).
        let record_completed =
            world.metrics().records().values().filter(|r| r.is_completed()).count();
        prop_assert_eq!(record_completed, completed);
        // Without a failsafe there are never recoveries.
        if !failsafe {
            prop_assert_eq!(world.recovered_count(), 0);
        }
    }

    /// An unreachable rescheduling threshold disables job movement even
    /// with the INFORM machinery running.
    #[test]
    fn huge_threshold_prevents_rescheduling(seed in 0u64..1000) {
        let mut config = WorldConfig::small_test(30);
        config.aria = AriaConfig {
            reschedule_threshold: SimDuration::from_hours(10_000),
            ..AriaConfig::default()
        };
        let mut world = World::new(config, seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(10), 30);
        world.submit_schedule(&schedule, &mut jobs);
        world.run();
        prop_assert_eq!(world.metrics().completed_count(), 30);
        prop_assert_eq!(world.metrics().reschedule_summary().sum(), 0.0);
    }

    /// Lossy-transport conservation: for any loss rate up to 50%,
    /// arbitrary duplicate/jitter noise and arbitrary partition windows,
    /// every submitted job ends in exactly one terminal column — and
    /// every protocol invariant holds after every single event (the run
    /// is fully audited, not just sampled).
    #[test]
    fn fault_conservation_is_exhaustive(
        seed in 0u64..1000,
        loss in 0.0f64..0.5,
        duplicate in 0.0f64..0.25,
        jitter_ms in 0u64..1500,
        windows in 0usize..3,
        first_cut_mins in 5u64..240,
        cut_mins in 1u64..45,
        failsafe in any::<bool>(),
    ) {
        let mut config = WorldConfig::small_test(25);
        config.failsafe = failsafe;
        config.fault = FaultPlan {
            loss,
            duplicate,
            jitter_ms,
            partitions: (0..windows as u64)
                .map(|i| PartitionWindow {
                    start: SimTime::from_mins(first_cut_mins + 90 * i),
                    duration: SimDuration::from_mins(cut_mins),
                })
                .collect(),
            keep: None,
        };
        let mut world = World::new(config, seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(45), 15);
        world.submit_schedule(&schedule, &mut jobs);
        let audit = world.run_audited();
        prop_assert!(audit.is_ok(), "invariant violated under faults: {:?}", audit);
        let completed = world.metrics().completed_count() as usize;
        let lost = world.lost_jobs().len();
        let abandoned = world.abandoned_jobs().len();
        prop_assert_eq!(completed + lost + abandoned, 15,
            "completed={} lost={} abandoned={}", completed, lost, abandoned);
        let record_completed =
            world.metrics().records().values().filter(|r| r.is_completed()).count();
        prop_assert_eq!(record_completed, completed, "a job completed twice");
    }

    /// Graceful degradation: with the failsafe on, loss up to 10% must
    /// not lose a single job — the ACK/retransmit ladder plus the
    /// fallback-offer and failsafe layers absorb every dropped ASSIGN.
    #[test]
    fn moderate_loss_never_loses_jobs(
        seed in 0u64..1000,
        loss in 0.0f64..0.10,
    ) {
        let mut config = WorldConfig::small_test(30);
        config.fault = FaultPlan { loss, ..FaultPlan::none() };
        let mut world = World::new(config, seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(30), 20);
        world.submit_schedule(&schedule, &mut jobs);
        world.run();
        prop_assert_eq!(world.lost_jobs().len(), 0, "moderate loss lost a job");
        prop_assert_eq!(world.metrics().completed_count(), 20,
            "moderate loss must still complete the whole workload");
    }

    /// Gauge consistency: idle-node counts never exceed the node count,
    /// and the completed-jobs series is monotone, ending at the total.
    #[test]
    fn gauge_series_are_consistent(
        seed in 0u64..1000,
        nodes in 15usize..50,
        rescheduling in any::<bool>(),
    ) {
        let world = run_world(seed, nodes, 20, 15, rescheduling, false);
        let metrics = world.metrics();
        for &idle in metrics.idle_series().values() {
            prop_assert!(idle <= nodes as f64);
            prop_assert!(idle >= 0.0);
        }
        let completed = metrics.completed_series().values();
        prop_assert!(completed.windows(2).all(|w| w[0] <= w[1]));
        // Sampling stops at the horizon; stragglers may drain afterwards,
        // so the final sample is bounded by (and usually equals) the total.
        prop_assert!(*completed.last().unwrap() <= 20.0);
        prop_assert_eq!(metrics.completed_count(), 20);
    }
}

/// Pinned regression for a recorded `jobs_complete_once_on_matching_nodes`
/// failure at `seed = 914, nodes = 17, rescheduling = false`: the
/// rescheduling branch of ACCEPT handling was not gated on
/// `config.aria.rescheduling`, so a late offer could move a job — and count
/// a reschedule — in a world where movement is disabled, breaking the
/// `reschedules == assignments - 1` identity. Sweep the remaining fuzzed
/// dimensions to cover the whole recorded neighborhood.
#[test]
fn regression_seed_914_stale_accept_must_not_move_jobs() {
    for job_count in [5, 12, 24, 39] {
        for interval in [5, 30, 119] {
            for deadline in [false, true] {
                let world = run_world(914, 17, job_count, interval, false, deadline);
                let metrics = world.metrics();
                assert_eq!(
                    metrics.completed_count(),
                    job_count as u64,
                    "job_count={job_count} interval={interval} deadline={deadline}"
                );
                for record in metrics.records().values() {
                    assert!(record.is_completed());
                    assert!(record.assignments >= 1);
                    assert_eq!(record.reschedules, record.assignments - 1);
                    // Movement is disabled: one assignment, zero reschedules.
                    assert_eq!(record.assignments, 1);
                    assert_eq!(record.reschedules, 0);
                }
            }
        }
    }
}

/// Meta-test for the regression-promotion policy: the vendored proptest
/// stand-in does not replay `.proptest-regressions` files, so every
/// recorded `cc` entry must be promoted into a named unit test in this
/// file (tagged `promoted to: <test_name>` on its line). This test fails
/// when an entry is recorded but never promoted — or when the promoted
/// test is later renamed without updating the record.
#[test]
fn regression_seeds_are_promoted_to_named_tests() {
    // Registered from crates/scenarios via a `[[test]] path` entry, so the
    // manifest dir is two levels below the repo root.
    let dir = concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests");
    let record = std::fs::read_to_string(format!("{dir}/protocol_invariants.proptest-regressions"))
        .expect("regressions file next to this test");
    let source = std::fs::read_to_string(format!("{dir}/protocol_invariants.rs"))
        .expect("this test's own source");
    let mut entries = 0;
    for line in record.lines().filter(|l| l.trim_start().starts_with("cc ")) {
        entries += 1;
        let name = line
            .split("promoted to:")
            .nth(1)
            .unwrap_or_else(|| panic!("unpromoted regression entry: {line}"))
            .trim();
        assert!(
            source.contains(&format!("fn {name}()")),
            "regression entry promises a test named `{name}` that does not exist"
        );
    }
    assert!(entries >= 1, "the seed-914 provenance record must not be deleted");
}
