//! The sharded executor's equivalence gates (DESIGN.md §14).
//!
//! `World::run_sharded` must be a pure wall-clock optimisation: the
//! latency-horizon windows, the parallel bid precompute and the
//! deterministic cross-shard merge may never change a single observable
//! of the trajectory. Two claims pin that:
//!
//! 1. **Goldens** — the determinism-golden scenarios (iMixed, seeds 11
//!    and 12) produce bit-for-bit identical final worlds and probe
//!    traces at 1, 2, 4 and 8 shards.
//! 2. **Randomized worlds** — across joins, crashes, lossy transport,
//!    duplicates, jitter and partition windows, the sharded run's state
//!    fingerprint and full probe trace equal the serial run's at every
//!    shard count.
//!
//! The companion static gate — every cross-node edge flows through
//! `World::transmit` with a floor-bounded delay — is `cargo xtask
//! horizon --check` against the committed `HORIZON.json`.

use aria_core::{FaultPlan, PartitionWindow, World, WorldConfig};
use aria_probe::{RingRecorder, TraceMeta};
use aria_scenarios::{Runner, Scenario};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 8];

#[test]
fn golden_scenarios_are_bit_identical_at_every_shard_count() {
    let runner = Runner::scaled(30, 15);
    for seed in [11, 12] {
        let (serial_stats, serial_trace) = runner.run_once_traced(Scenario::IMixed, seed);
        for shards in SHARD_COUNTS {
            let (stats, trace) = runner.run_once_traced_sharded(Scenario::IMixed, seed, shards);
            assert_eq!(
                serial_trace, trace,
                "seed {seed}: probe trace diverged at {shards} shard(s)"
            );
            assert_eq!(serial_stats.events, stats.events, "seed {seed}, {shards} shard(s)");
            assert_eq!(serial_stats.completed, stats.completed, "seed {seed}, {shards} shard(s)");
            assert_eq!(serial_stats.traffic, stats.traffic, "seed {seed}, {shards} shard(s)");
        }
    }
}

#[test]
fn golden_final_worlds_share_one_fingerprint_across_shard_counts() {
    let runner = Runner::scaled(30, 15);
    for seed in [11, 12] {
        let mut serial =
            runner.build_world(Scenario::IMixed, seed, FaultPlan::none(), aria_probe::NullProbe);
        serial.run();
        let expected = serial.fingerprint();
        for shards in SHARD_COUNTS {
            let mut world = runner.build_world(
                Scenario::IMixed,
                seed,
                FaultPlan::none(),
                aria_probe::NullProbe,
            );
            world.run_sharded(shards);
            assert_eq!(
                expected,
                world.fingerprint(),
                "seed {seed}: fingerprint diverged at {shards} shard(s)"
            );
        }
    }
}

/// Builds one randomized world — churn, faults and all — runs it with
/// the chosen executor, and returns its state fingerprint plus the full
/// probe recording.
fn run_world(
    seed: u64,
    joins: u64,
    crashes: u64,
    loss_pct: u32,
    windows: u64,
    shards: Option<usize>,
) -> (u64, aria_probe::Trace) {
    let mut config = WorldConfig::small_test(20);
    config.joins = (0..joins).map(|i| SimTime::from_mins(20 + 30 * i)).collect();
    config.crashes = (0..crashes).map(|i| SimTime::from_mins(35 + 45 * i)).collect();
    config.fault = FaultPlan {
        loss: f64::from(loss_pct) / 100.0,
        duplicate: 0.05,
        jitter_ms: 250,
        partitions: (0..windows)
            .map(|i| PartitionWindow {
                start: SimTime::from_mins(40 + 90 * i),
                duration: SimDuration::from_mins(8),
            })
            .collect(),
        keep: None,
    };
    let mut world = World::with_probe(config, seed, RingRecorder::default());
    let mut generator = JobGenerator::paper_batch();
    let schedule = SubmissionSchedule::new(SimTime::from_mins(1), SimDuration::from_secs(40), 10);
    world.submit_schedule(&schedule, &mut generator);
    match shards {
        None => {
            world.run();
        }
        Some(shards) => {
            world.run_sharded(shards);
        }
    }
    let fingerprint = world.fingerprint();
    let meta = TraceMeta {
        scenario: "sharded-equivalence".to_string(),
        seed,
        nodes: 20,
        jobs: 10,
    };
    (fingerprint, world.into_probe().into_trace(meta))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Claim 2: sharded == serial, bit for bit, on randomized worlds at
    /// every shard count.
    #[test]
    fn sharded_equals_serial_on_random_worlds(
        seed in 0u64..1000,
        joins in 0u64..4,
        crashes in 0u64..3,
        loss_pct in 0u32..30,
        windows in 0u64..2,
    ) {
        let (serial_fp, serial_trace) = run_world(seed, joins, crashes, loss_pct, windows, None);
        for shards in SHARD_COUNTS {
            let (fp, trace) = run_world(seed, joins, crashes, loss_pct, windows, Some(shards));
            prop_assert_eq!(serial_fp, fp, "fingerprint diverged at {} shard(s)", shards);
            prop_assert_eq!(
                &serial_trace, &trace,
                "probe trace diverged at {} shard(s)", shards
            );
        }
    }
}
