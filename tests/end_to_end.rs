//! Cross-crate integration tests: whole grids simulated end to end,
//! checking the headline behaviors the paper reports.

use aria_core::{CentralScheduler, MultiRequestScheduler, PolicyMix, World, WorldConfig};
use aria_grid::Policy;
use aria_scenarios::{Runner, Scenario};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, SubmissionSchedule};

/// A moderately loaded world used by several tests.
fn loaded_world(rescheduling: bool, seed: u64) -> World {
    let mut config = WorldConfig::small_test(80);
    config.aria.rescheduling = rescheduling;
    let mut world = World::new(config, seed);
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(15), 200);
    world.submit_schedule(&schedule, &mut jobs);
    world
}

#[test]
fn every_submitted_job_completes() {
    for rescheduling in [false, true] {
        let mut world = loaded_world(rescheduling, 1);
        world.run();
        assert_eq!(world.metrics().completed_count(), 200, "rescheduling={rescheduling}");
        assert!(world.abandoned_jobs().is_empty());
        // Release builds clamp past-scheduled events instead of asserting;
        // the counter proves no clamp ever happened.
        assert_eq!(world.clamped_events(), 0);
    }
}

#[test]
fn rescheduling_improves_mean_completion_under_load() {
    // At this reduced scale single seeds are noisy (the paper's result is
    // at 500 nodes / 1000 jobs), so compare seed-averaged means.
    let seeds = [1, 2, 3, 4, 5];
    let mean_over_seeds = |rescheduling: bool| {
        let mut total_moves = 0.0;
        let mean = seeds
            .iter()
            .map(|&seed| {
                let mut world = loaded_world(rescheduling, seed);
                world.run();
                total_moves += world.metrics().reschedule_summary().sum();
                world.metrics().completion_summary().mean()
            })
            .sum::<f64>()
            / seeds.len() as f64;
        (mean, total_moves)
    };
    let (plain_mean, _) = mean_over_seeds(false);
    let (dynamic_mean, moves) = mean_over_seeds(true);
    assert!(
        dynamic_mean < plain_mean,
        "rescheduling should cut completion time: {dynamic_mean} vs {plain_mean}"
    );
    // And it should actually have moved jobs, not won by accident.
    assert!(moves > 0.0);
}

#[test]
fn rescheduling_raises_utilization() {
    // Compare average idle-node counts over the busy first 10 hours.
    // Single seeds are noisy at this scale, so average a few.
    let busy_window = |world: &World| {
        let series = world.metrics().idle_series();
        let samples = (SimTime::from_hours(10).as_millis()
            / world.config().sample_period.as_millis()) as usize;
        let values = &series.values()[..samples.min(series.len())];
        values.iter().sum::<f64>() / values.len() as f64
    };
    let seeds = [1, 2, 3, 4, 5];
    let mean_idle = |rescheduling: bool| {
        seeds
            .iter()
            .map(|&seed| {
                let mut world = loaded_world(rescheduling, seed);
                world.run();
                busy_window(&world)
            })
            .sum::<f64>()
            / seeds.len() as f64
    };
    let (plain, dynamic) = (mean_idle(false), mean_idle(true));
    assert!(
        dynamic <= plain,
        "rescheduling should not leave more nodes idle: {dynamic} vs {plain}"
    );
}

#[test]
fn deadline_rescheduling_cuts_misses() {
    let run = |rescheduling: bool| {
        let mut config = WorldConfig::small_test(80);
        config.policies = PolicyMix::Uniform(Policy::Edf);
        config.aria.rescheduling = rescheduling;
        let mut world = World::new(config, 4);
        let mut jobs = JobGenerator::paper_deadline();
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(15), 200);
        world.submit_schedule(&schedule, &mut jobs);
        world.run();
        let stats = world.metrics().deadline_stats();
        assert_eq!(stats.met() + stats.missed(), 200);
        stats.missed()
    };
    let plain = run(false);
    let dynamic = run(true);
    assert!(
        dynamic <= plain,
        "rescheduling should not increase missed deadlines ({dynamic} vs {plain})"
    );
}

#[test]
fn distributed_protocol_approaches_central_baseline() {
    // The omniscient centralized scheduler is an upper bound on initial
    // placement; ARiA with rescheduling should land within a reasonable
    // factor of it on the same workload scale.
    let mut central = CentralScheduler::new(
        80,
        PolicyMix::paper_mixed(),
        SimTime::from_hours(12),
        SimDuration::from_mins(5),
        5,
    );
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(15), 200);
    central.submit_schedule(&schedule, &mut jobs);
    central.run();
    let central_mean = central.metrics().completion_summary().mean();

    let mut world = loaded_world(true, 5);
    world.run();
    let aria_mean = world.metrics().completion_summary().mean();

    assert!(central_mean > 0.0);
    assert!(
        aria_mean < central_mean * 2.0,
        "ARiA ({aria_mean:.0}s) should be within 2x of the central baseline ({central_mean:.0}s)"
    );
}

#[test]
fn multireq_baseline_completes_but_wastes_replicas() {
    let mut grid = MultiRequestScheduler::new(
        80,
        PolicyMix::paper_mixed(),
        3,
        SimTime::from_hours(12),
        SimDuration::from_mins(5),
        8,
    );
    let mut jobs = JobGenerator::paper_batch();
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(15), 200);
    grid.submit_schedule(&schedule, &mut jobs);
    grid.run();
    assert_eq!(grid.metrics().completed_count(), 200);
    // The paper's criticism of this scheme: schedulers get loaded with
    // jobs that are frequently cancelled.
    assert!(grid.revoked_replicas() > 100, "revoked {}", grid.revoked_replicas());
    // ARiA on the same scale moves jobs without any wasted enqueue: its
    // reassignments remove the job from the old queue first.
    let mut world = loaded_world(true, 8);
    world.run();
    assert_eq!(world.metrics().completed_count(), 200);
}

#[test]
fn scenario_catalog_runs_at_reduced_scale() {
    // Smoke-run one representative scenario of each family end to end.
    let runner = Runner::scaled(40, 20);
    for scenario in [
        Scenario::Mixed,
        Scenario::IMixed,
        Scenario::IDeadlineH,
        Scenario::IExpanding,
        Scenario::IAccuracyBad,
        Scenario::IInform4,
    ] {
        let result = runner.run(scenario, &[1]);
        assert_eq!(result.runs[0].completed, 20, "{scenario} lost jobs");
    }
}

#[test]
fn expanding_grid_uses_new_nodes() {
    let mut config = WorldConfig::small_test(60);
    config.joins = (0..30u64)
        .map(|i| SimTime::from_mins(20) + SimDuration::from_mins(2) * i)
        .collect();
    let mut world = World::new(config, 6);
    let mut jobs = JobGenerator::paper_batch();
    // Sustained pressure so late joiners still see waiting jobs.
    let schedule =
        SubmissionSchedule::new(SimTime::from_mins(5), SimDuration::from_secs(20), 250);
    world.submit_schedule(&schedule, &mut jobs);
    world.run();
    assert_eq!(world.topology().len(), 90);
    assert!(world.topology().is_connected());
    // At least one job must have executed on a joined node (raw id >= 60).
    let on_new = world
        .metrics()
        .records()
        .values()
        .filter(|r| r.executed_on.is_some_and(|n| n >= 60))
        .count();
    assert!(on_new > 0, "no job ever ran on a newly joined node");
}
