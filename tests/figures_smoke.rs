//! Smoke tests for the figure-reproduction harness: every table and
//! figure renders at reduced scale and shows the paper's qualitative
//! shape.

use aria_scenarios::{Campaign, Runner, Scenario};

fn campaign() -> Campaign {
    Campaign::new(Runner::scaled(50, 60), vec![1, 2])
}

#[test]
fn every_artifact_renders() {
    let mut c = campaign();
    for id in
        ["table1", "table2", "fig1", "fig2", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10"]
    {
        let out = c.render(id).unwrap_or_else(|| panic!("unknown id {id}"));
        assert!(!out.is_empty(), "{id} rendered empty");
        assert!(out.starts_with("# "), "{id} missing title: {out}");
    }
}

#[test]
fn fig1_reaches_total_jobs_in_all_policies() {
    let mut c = campaign();
    let fig = c.fig1();
    // Last CSV data row (the figure is followed by an ASCII chart).
    let last_row = fig
        .lines()
        .rfind(|l| l.starts_with(|c: char| c.is_ascii_digit()) && l.contains(','))
        .unwrap();
    // All six series end at the total job count (60).
    let cols: Vec<&str> = last_row.split(',').collect();
    assert_eq!(cols.len(), 7, "{last_row}");
    for value in &cols[1..] {
        assert_eq!(*value, "60.0", "series did not finish all jobs: {last_row}");
    }
}

#[test]
fn fig2_rescheduling_beats_plain_for_sjf_and_mixed() {
    let runner = Runner::scaled(50, 120);
    let seeds = [1, 2, 3];
    let results = runner.run_many(
        &[Scenario::Sjf, Scenario::ISjf, Scenario::Mixed, Scenario::IMixed],
        &seeds,
    );
    let mean = |i: usize| results[i].completion().mean();
    assert!(
        mean(1) < mean(0),
        "iSJF ({:.0}s) should beat SJF ({:.0}s)",
        mean(1),
        mean(0)
    );
    assert!(
        mean(3) < mean(2),
        "iMixed ({:.0}s) should beat Mixed ({:.0}s)",
        mean(3),
        mean(2)
    );
}

#[test]
fn fig10_inform_traffic_scales_with_batch_size() {
    let runner = Runner::scaled(50, 100);
    let seeds = [1, 2];
    let results =
        runner.run_many(&[Scenario::IInform1, Scenario::IMixed, Scenario::IInform4], &seeds);
    let inform = |i: usize| results[i].avg_messages(aria_metrics::TrafficClass::Inform);
    assert!(
        inform(0) < inform(2),
        "iInform1 ({:.0}) should send less INFORM traffic than iInform4 ({:.0})",
        inform(0),
        inform(2)
    );
    assert!(inform(1) <= inform(2) * 1.05, "baseline should not exceed iInform4");
}

#[test]
fn baselines_artifact_renders_all_four_schedulers() {
    let mut c = Campaign::new(Runner::scaled(30, 20).workers(1), vec![1]);
    let out = c.render("baselines").expect("known artifact");
    for scheduler in ["ARiA(iMixed)", "central", "gossip", "multireq_k3"] {
        assert!(out.contains(scheduler), "missing {scheduler}: {out}");
    }
    // Gossip row reports nonzero message traffic; central reports none.
    let central_row = out.lines().find(|l| l.starts_with("central,")).unwrap();
    assert!(central_row.ends_with(",0"), "{central_row}");
}

#[test]
fn fig9_accuracy_scenarios_stay_feasible() {
    let runner = Runner::scaled(40, 40);
    let results = runner.run_many(
        &[Scenario::IPrecise, Scenario::IAccuracy25, Scenario::IAccuracyBad],
        &[3],
    );
    for r in &results {
        assert_eq!(r.runs[0].completed, 40, "{} lost jobs", r.scenario);
    }
    // Optimistic estimation (AccuracyBad) inflates execution time.
    let precise_exec = results[0].execution().mean();
    let bad_exec = results[2].execution().mean();
    assert!(
        bad_exec > precise_exec,
        "optimistic ERT should lengthen executions: {bad_exec:.0}s vs {precise_exec:.0}s"
    );
}
