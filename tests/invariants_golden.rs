//! Golden protocol-invariant test: the full state-machine audit holds on
//! every event of realistic runs, and auditing is observation-free.
//!
//! [`aria_core::World::check_invariants`] cross-checks queues, flood
//! slots, offer windows and job conservation against the pending event
//! census (see DESIGN.md "Determinism rules"). These tests drive it two
//! ways:
//!
//! * `Runner::run_once_checked` re-runs catalog scenarios — including
//!   INFORM/reschedule-heavy and expanding ones — with the audit after
//!   *every* drained event, and every statistic must match the unchecked
//!   run bit-for-bit: a checker that perturbs the run is worthless.
//! * A crash-churn world (no catalog scenario injects failures) runs
//!   checked through node crashes, failsafe recoveries and job loss,
//!   where the conservation invariant has the most ways to break.

use aria_core::{World, WorldConfig};
use aria_metrics::TrafficClass;
use aria_scenarios::{RunStats, Runner, Scenario};
use aria_sim::{SimDuration, SimTime};
use aria_workload::{JobGenerator, JobGeneratorConfig, SubmissionSchedule};

/// Asserts two runs produced identical statistics, bit-for-bit on floats.
fn assert_identical(checked: &RunStats, plain: &RunStats, label: &str) {
    assert_eq!(checked.completed, plain.completed, "{label}: completed");
    assert_eq!(checked.abandoned, plain.abandoned, "{label}: abandoned");
    for class in TrafficClass::ALL {
        assert_eq!(
            checked.traffic.messages(class),
            plain.traffic.messages(class),
            "{label}: {class:?} messages"
        );
    }
    let bitwise = [
        (checked.completion.mean(), plain.completion.mean(), "completion mean"),
        (checked.waiting.mean(), plain.waiting.mean(), "waiting mean"),
        (checked.execution.mean(), plain.execution.mean(), "execution mean"),
        (checked.completion_p50, plain.completion_p50, "completion p50"),
        (checked.completion_p95, plain.completion_p95, "completion p95"),
        (checked.reschedules, plain.reschedules, "reschedules"),
    ];
    for (a, b, what) in bitwise {
        assert_eq!(a.to_bits(), b.to_bits(), "{label}: {what} ({a} vs {b})");
    }
    assert_eq!(
        checked.completed_series.values(),
        plain.completed_series.values(),
        "{label}: completed series"
    );
    assert_eq!(
        checked.idle_series.values(),
        plain.idle_series.values(),
        "{label}: idle series"
    );
    assert_eq!(checked.deadline.met(), plain.deadline.met(), "{label}: deadlines met");
    assert_eq!(checked.deadline.missed(), plain.deadline.missed(), "{label}: deadlines missed");
}

/// The determinism-golden scenario, audited on every event: the checked
/// run must satisfy all invariants *and* reproduce the unchecked run
/// exactly (same goldens as `determinism_golden.rs`).
#[test]
fn checked_imixed_reproduces_the_unchecked_run() {
    let runner = Runner::scaled(30, 15);
    for seed in [11, 12] {
        let checked = runner.run_once_checked(Scenario::IMixed, seed);
        let plain = runner.run_once(Scenario::IMixed, seed);
        assert_eq!(checked.completed, 15, "seed {seed}: completed");
        assert_identical(&checked, &plain, &format!("iMixed seed {seed}"));
    }
}

/// Scenarios that stress the machinery the audit covers hardest:
/// INFORM-driven rescheduling (live job movement between queues),
/// deadline queues (EDF ordering), and overlay growth mid-run.
#[test]
fn checked_runs_hold_across_protocol_variants() {
    let runner = Runner::scaled(25, 12);
    for scenario in [Scenario::IHighLoad, Scenario::IInform1, Scenario::IDeadline] {
        let checked = runner.run_once_checked(scenario, 9);
        let plain = runner.run_once(scenario, 9);
        assert_identical(&checked, &plain, &format!("{scenario:?} seed 9"));
    }
    let runner = Runner::scaled(40, 10);
    let checked = runner.run_once_checked(Scenario::IExpanding, 2);
    let plain = runner.run_once(Scenario::IExpanding, 2);
    assert_identical(&checked, &plain, "iExpanding seed 2");
}

/// Crash churn: nodes die mid-run, queues are lost, the failsafe
/// recovers jobs. No catalog scenario injects failures, so this builds
/// the world directly. The audit runs after every event — including the
/// ones where a job is momentarily only reachable through a pending
/// `RecoverJob` — and conservation must still close the books.
#[test]
fn checked_run_survives_crash_churn() {
    for (failsafe, seed) in [(true, 5), (true, 17), (false, 5)] {
        let mut config = WorldConfig::small_test(35);
        config.failsafe = failsafe;
        config.crashes = (0..6).map(|i| SimTime::from_mins(15 + 12 * i)).collect();
        let mut world = World::new(config, seed);
        let mut jobs = JobGenerator::new(JobGeneratorConfig::paper_batch());
        let schedule =
            SubmissionSchedule::new(SimTime::from_mins(2), SimDuration::from_secs(30), 25);
        world.submit_schedule(&schedule, &mut jobs);
        world.run_checked();

        let completed = world.metrics().completed_count() as usize;
        let lost = world.lost_jobs().len();
        let abandoned = world.abandoned_jobs().len();
        assert_eq!(
            completed + lost + abandoned,
            25,
            "failsafe={failsafe} seed {seed}: completed={completed} lost={lost} \
             abandoned={abandoned}"
        );
        assert_eq!(world.crashed_nodes().len(), 6, "failsafe={failsafe} seed {seed}");
        assert_eq!(world.clamped_events(), 0);
    }
}
