//! Golden observability test: the probe records faithfully and changes
//! nothing.
//!
//! Three contracts are pinned here:
//!
//! 1. A probed run exports schema-valid JSONL whose per-job lifecycles
//!    are complete (submission through a terminal state) and whose
//!    round-trip through the schema is lossless.
//! 2. Attaching a recording probe is observationally free: every metric
//!    of a probed run is bit-for-bit identical to the unprobed run of
//!    the same `(config, seed)`.
//! 3. Trace diffing is a determinism oracle: same-seed traces never
//!    diverge, and different-seed traces report a located first
//!    divergent event rather than a bare mismatch.

use aria_probe::{first_divergence, lifecycles, schema, summarize, Trace};
use aria_scenarios::{Runner, RunStats, Scenario};

fn traced(seed: u64) -> (RunStats, Trace) {
    Runner::scaled(30, 15).run_once_traced(Scenario::IMixed, seed)
}

#[test]
fn probed_run_exports_schema_valid_jsonl_with_complete_lifecycles() {
    let (stats, trace) = traced(11);
    schema::validate(&trace).expect("exported trace must satisfy its own schema");
    let text = schema::to_jsonl(&trace);
    let parsed = schema::from_jsonl(&text).expect("exported JSONL must parse back");
    assert_eq!(parsed, trace, "JSONL round-trip must be lossless");
    assert_eq!(trace.meta.scenario, "iMixed");
    assert_eq!(trace.meta.seed, 11);
    assert_eq!(trace.meta.nodes, 30);
    assert_eq!(trace.meta.jobs, 15);
    assert_eq!(trace.dropped, 0, "a scaled run must fit the default ring");

    let lifecycles = lifecycles(&trace);
    assert_eq!(lifecycles.len() as u64, trace.meta.jobs, "every job must appear in the trace");
    for (job, lc) in &lifecycles {
        assert!(lc.is_complete(), "{job} has an incomplete lifecycle: {lc:?}");
        assert!(lc.assignments >= 1, "{job} reached a terminal state without assignment");
    }
    let completed = lifecycles.values().filter(|lc| lc.completed).count() as u64;
    assert_eq!(completed, stats.completed, "lifecycle view must agree with the metrics");

    let summary = summarize(&trace);
    assert_eq!(summary.events, trace.entries.len() as u64);
    assert!(summary.request_rounds >= trace.meta.jobs, "each job opens at least one round");
    assert!(summary.offers > 0, "an iMixed run must collect ACCEPT offers");
}

#[test]
fn attaching_the_probe_does_not_change_the_run() {
    let baseline = Runner::scaled(30, 15).run_once(Scenario::IMixed, 11);
    let (probed, _) = traced(11);
    assert_eq!(probed.completed, baseline.completed);
    assert_eq!(probed.abandoned, baseline.abandoned);
    assert_eq!(probed.events, baseline.events, "processed event count must not move");
    assert_eq!(probed.traffic.total_messages(), baseline.traffic.total_messages());
    assert_eq!(probed.completion.mean().to_bits(), baseline.completion.mean().to_bits());
    assert_eq!(probed.waiting.mean().to_bits(), baseline.waiting.mean().to_bits());
    assert_eq!(probed.completed_series.values(), baseline.completed_series.values());
}

#[test]
fn runs_report_wall_time_and_event_throughput() {
    let (stats, trace) = traced(11);
    assert!(stats.wall_time_secs > 0.0, "a run takes nonzero wall time");
    assert!(stats.events > 0, "a run processes events");
    assert!(stats.events >= trace.entries.len() as u64 / 2, "event count must be plausible");
    assert!(stats.events_per_sec() > 0.0);
}

#[test]
fn same_seed_traces_do_not_diverge() {
    let (_, a) = traced(11);
    let (_, b) = traced(11);
    assert_eq!(first_divergence(&a, &b), None, "same (config, seed) must replay exactly");
}

#[test]
fn different_seeds_report_a_located_first_divergence() {
    let (_, a) = traced(11);
    let (_, b) = traced(12);
    let divergence = first_divergence(&a, &b).expect("different seeds must diverge");
    // Everything before the divergence matches; the divergence itself
    // carries both entries so the report can show sim-time and node.
    assert_eq!(a.entries[..divergence.index], b.entries[..divergence.index]);
    assert!(divergence.left.is_some() || divergence.right.is_some());
    let rendered = divergence.to_string();
    assert!(rendered.contains("first divergence"), "{rendered}");
}
